#include "minerva/directory.h"

#include <gtest/gtest.h>

#include "net/network.h"

#include "minerva/post.h"
#include "synopses/serialization.h"

namespace iqn {
namespace {

struct Fixture {
  SimulatedNetwork net;
  std::unique_ptr<ChordRing> ring;
  std::vector<std::unique_ptr<DhtStore>> stores;
  std::vector<std::unique_ptr<Directory>> dirs;

  explicit Fixture(size_t nodes, size_t replication = 1) {
    auto r = ChordRing::Build(&net, nodes);
    EXPECT_TRUE(r.ok());
    ring = std::move(r).value();
    for (size_t i = 0; i < nodes; ++i) {
      auto s = DhtStore::Attach(&ring->node(i), replication);
      EXPECT_TRUE(s.ok());
      stores.push_back(std::move(s).value());
      dirs.push_back(std::make_unique<Directory>(stores.back().get()));
    }
  }
};

Post MakePost(uint64_t peer_id, const std::string& term, uint64_t len) {
  SynopsisConfig config;
  auto syn = config.MakeEmpty();
  EXPECT_TRUE(syn.ok());
  for (DocId id = 0; id < len; ++id) syn.value()->Add(id + peer_id * 100000);
  Post post;
  post.peer_id = peer_id;
  post.address = peer_id;
  post.term = term;
  post.list_length = len;
  post.term_space_size = 1000;
  post.synopsis = SerializeSynopsisToBytes(*syn.value());
  return post;
}

TEST(DirectoryTest, PublishAndFetchFromAnyPeer) {
  Fixture fx(8);
  ASSERT_TRUE(fx.dirs[0]->Publish(MakePost(1, "forest", 50)).ok());
  ASSERT_TRUE(fx.dirs[3]->Publish(MakePost(2, "forest", 80)).ok());
  ASSERT_TRUE(fx.dirs[5]->Publish(MakePost(3, "fire", 10)).ok());

  for (size_t origin = 0; origin < 8; ++origin) {
    auto forest = fx.dirs[origin]->FetchPeerList("forest");
    ASSERT_TRUE(forest.ok());
    EXPECT_EQ(forest.value().size(), 2u);
    auto fire = fx.dirs[origin]->FetchPeerList("fire");
    ASSERT_TRUE(fire.ok());
    EXPECT_EQ(fire.value().size(), 1u);
    EXPECT_EQ(fire.value()[0].peer_id, 3u);
  }
}

TEST(DirectoryTest, RepublishReplacesOwnPost) {
  Fixture fx(4);
  ASSERT_TRUE(fx.dirs[0]->Publish(MakePost(1, "forest", 50)).ok());
  ASSERT_TRUE(fx.dirs[0]->Publish(MakePost(1, "forest", 75)).ok());
  auto posts = fx.dirs[1]->FetchPeerList("forest");
  ASSERT_TRUE(posts.ok());
  ASSERT_EQ(posts.value().size(), 1u);
  EXPECT_EQ(posts.value()[0].list_length, 75u);
}

TEST(DirectoryTest, UnknownTermHasEmptyPeerList) {
  Fixture fx(4);
  auto posts = fx.dirs[0]->FetchPeerList("nothing");
  ASSERT_TRUE(posts.ok());
  EXPECT_TRUE(posts.value().empty());
}

TEST(DirectoryTest, WithdrawRemovesOnlyOwnPost) {
  Fixture fx(4);
  ASSERT_TRUE(fx.dirs[0]->Publish(MakePost(1, "forest", 50)).ok());
  ASSERT_TRUE(fx.dirs[1]->Publish(MakePost(2, "forest", 60)).ok());
  ASSERT_TRUE(fx.dirs[2]->Withdraw("forest", 1).ok());
  auto posts = fx.dirs[3]->FetchPeerList("forest");
  ASSERT_TRUE(posts.ok());
  ASSERT_EQ(posts.value().size(), 1u);
  EXPECT_EQ(posts.value()[0].peer_id, 2u);
}

TEST(DirectoryTest, PublishValidates) {
  Fixture fx(2);
  Post post = MakePost(1, "", 10);
  EXPECT_EQ(fx.dirs[0]->Publish(post).code(), StatusCode::kInvalidArgument);
}

TEST(DirectoryTest, MalformedPostsAreSkippedNotFatal) {
  Fixture fx(4);
  ASSERT_TRUE(fx.dirs[0]->Publish(MakePost(1, "forest", 50)).ok());
  // Inject garbage bytes directly under the same directory key.
  ASSERT_TRUE(fx.stores[0]
                  ->Upsert(Directory::KeyForTerm("forest"), "evil",
                           Bytes{1, 2, 3})
                  .ok());
  auto posts = fx.dirs[1]->FetchPeerList("forest");
  ASSERT_TRUE(posts.ok());
  EXPECT_EQ(posts.value().size(), 1u);  // the valid one survives
}

TEST(DirectoryTest, PostingCostsNetworkTraffic) {
  Fixture fx(8);
  fx.net.ResetStats();
  ASSERT_TRUE(fx.dirs[0]->Publish(MakePost(1, "forest", 50)).ok());
  EXPECT_GT(fx.net.stats().messages, 0u);
  // A 2048-bit MIPs synopsis serializes to 64 x 8 bytes + framing.
  EXPECT_GT(fx.net.stats().bytes, 512u);
}

TEST(DirectoryTest, PublishBatchEquivalentButCheaper) {
  Fixture single_fx(8);
  Fixture batch_fx(8);
  std::vector<Post> posts;
  for (uint64_t t = 0; t < 40; ++t) {
    posts.push_back(MakePost(1, "term" + std::to_string(t), 10 + t));
  }

  single_fx.net.ResetStats();
  for (const Post& p : posts) ASSERT_TRUE(single_fx.dirs[0]->Publish(p).ok());
  uint64_t single_bytes = single_fx.net.stats().bytes;

  batch_fx.net.ResetStats();
  ASSERT_TRUE(batch_fx.dirs[0]->PublishBatch(posts).ok());
  uint64_t batch_bytes = batch_fx.net.stats().bytes;

  for (const Post& p : posts) {
    auto fetched = batch_fx.dirs[3]->FetchPeerList(p.term);
    ASSERT_TRUE(fetched.ok());
    ASSERT_EQ(fetched.value().size(), 1u) << p.term;
    EXPECT_EQ(fetched.value()[0].list_length, p.list_length);
  }
  EXPECT_LT(batch_bytes, single_bytes);
}

TEST(DirectoryTest, FetchTopPeerListRanksByListLength) {
  Fixture fx(6);
  ASSERT_TRUE(fx.dirs[0]->Publish(MakePost(1, "forest", 10)).ok());
  ASSERT_TRUE(fx.dirs[0]->Publish(MakePost(2, "forest", 90)).ok());
  ASSERT_TRUE(fx.dirs[0]->Publish(MakePost(3, "forest", 50)).ok());
  auto top = fx.dirs[4]->FetchTopPeerList("forest", 2);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top.value().size(), 2u);
  EXPECT_EQ(top.value()[0].list_length, 90u);
  EXPECT_EQ(top.value()[1].list_length, 50u);
  // limit larger than the list: everything.
  auto all = fx.dirs[4]->FetchTopPeerList("forest", 10);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().size(), 3u);
}

TEST(DirectoryTest, FetchTopCostsLessBandwidthThanFetchAll) {
  Fixture fx(6);
  for (uint64_t p = 1; p <= 20; ++p) {
    ASSERT_TRUE(fx.dirs[0]->Publish(MakePost(p, "busy", p * 5)).ok());
  }
  // Fetch from a node that is NOT the key's owner, so the PeerList
  // actually crosses the wire.
  auto owner =
      fx.ring->Lookup(0, RingIdForKey(Directory::KeyForTerm("busy")));
  ASSERT_TRUE(owner.ok());
  size_t origin = 0;
  while (fx.ring->node(origin).address() == owner.value().owner.address) {
    ++origin;
  }
  fx.net.ResetStats();
  auto all = fx.dirs[origin]->FetchPeerList("busy");
  ASSERT_TRUE(all.ok());
  uint64_t all_bytes = fx.net.stats().bytes;
  fx.net.ResetStats();
  auto top = fx.dirs[origin]->FetchTopPeerList("busy", 3);
  ASSERT_TRUE(top.ok());
  uint64_t top_bytes = fx.net.stats().bytes;
  EXPECT_EQ(top.value().size(), 3u);
  EXPECT_LT(top_bytes, all_bytes / 2);
}

TEST(DirectoryTest, SurvivesOwnerFailureWithReplication) {
  Fixture fx(10, /*replication=*/3);
  ASSERT_TRUE(fx.dirs[0]->Publish(MakePost(1, "forest", 50)).ok());
  auto owner = fx.ring->Lookup(0, RingIdForKey(Directory::KeyForTerm("forest")));
  ASSERT_TRUE(owner.ok());
  ASSERT_TRUE(fx.net.SetNodeUp(owner.value().owner.address, false).ok());
  ASSERT_TRUE(fx.ring->RunMaintenance(10).ok());
  // Any live peer can still fetch the PeerList.
  for (size_t origin = 0; origin < 10; ++origin) {
    if (fx.ring->node(origin).address() == owner.value().owner.address) {
      continue;
    }
    auto posts = fx.dirs[origin]->FetchPeerList("forest");
    ASSERT_TRUE(posts.ok()) << posts.status().ToString();
    EXPECT_EQ(posts.value().size(), 1u);
    break;
  }
}

}  // namespace
}  // namespace iqn

// Determinism regression tests for RunQueryBatch: for a fixed seed, the
// batch path with 1, 2, and 8 threads must produce QueryOutcomes that are
// bit-identical (every double compared with exact ==) to running the same
// queries serially through RunQuery — across per-peer, per-term (plain and
// correlation-aware), and histogram aggregation — and must fold exactly
// the same traffic into the global network stats. Also covers the abort
// path: a failing batch item joins all work, reports the lowest-indexed
// error, leaves global stats untouched, and the engine (pool included)
// tears down cleanly afterwards.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "minerva/engine.h"
#include "minerva/internal/iqn_router.h"
#include "workload/fragments.h"
#include "workload/synthetic_corpus.h"

namespace iqn {
namespace {

using BatchQuery = MinervaEngine::BatchQuery;

std::vector<Corpus> SmallCollections(size_t peers = 4, uint64_t seed = 5) {
  SyntheticCorpusOptions opts;
  opts.num_documents = 240;
  opts.vocabulary_size = 400;
  opts.min_document_length = 15;
  opts.max_document_length = 40;
  opts.seed = seed;
  auto gen = SyntheticCorpusGenerator::Create(opts);
  EXPECT_TRUE(gen.ok());
  Corpus corpus = gen.value().Generate();
  auto frags = SplitIntoFragments(corpus, peers * 2);
  EXPECT_TRUE(frags.ok());
  auto collections = SlidingWindowCollections(frags.value(), /*window=*/3,
                                              /*offset=*/2, peers);
  EXPECT_TRUE(collections.ok());
  return std::move(collections).value();
}

// The most frequent terms of the reference index, most frequent first.
std::vector<std::string> FrequentTerms(const MinervaEngine& engine,
                                       size_t count) {
  std::vector<std::pair<size_t, std::string>> by_df;
  for (const auto& [term, list] : engine.reference_index().lists()) {
    by_df.emplace_back(list.size(), term);
  }
  std::sort(by_df.begin(), by_df.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  std::vector<std::string> terms;
  for (size_t i = 0; i < by_df.size() && i < count; ++i) {
    terms.push_back(by_df[i].second);
  }
  return terms;
}

// A mixed workload: single- and two-term queries, rotating initiators and
// varying k, so the batch exercises several candidate sets and routing
// iterations per aggregation strategy.
std::vector<BatchQuery> MakeBatch(const MinervaEngine& engine,
                                  size_t count) {
  std::vector<std::string> terms = FrequentTerms(engine, 6);
  EXPECT_GE(terms.size(), 4u);
  std::vector<BatchQuery> batch(count);
  for (size_t i = 0; i < count; ++i) {
    batch[i].initiator_index = i % engine.num_peers();
    Query& q = batch[i].query;
    q.terms = {terms[i % terms.size()]};
    if (i % 2 == 1) q.terms.push_back(terms[(i + 2) % terms.size()]);
    q.k = 10 + (i % 3) * 5;
  }
  return batch;
}

void ExpectOutcomeEq(const QueryOutcome& a, const QueryOutcome& b,
                     size_t item) {
  SCOPED_TRACE(::testing::Message() << "batch item " << item);
  // Routing decision, including the score diagnostics recorded at
  // selection time (doubles compared exactly — bit-identical).
  ASSERT_EQ(a.decision.peers.size(), b.decision.peers.size());
  for (size_t i = 0; i < a.decision.peers.size(); ++i) {
    EXPECT_EQ(a.decision.peers[i].peer_id, b.decision.peers[i].peer_id);
    EXPECT_EQ(a.decision.peers[i].address, b.decision.peers[i].address);
    EXPECT_EQ(a.decision.peers[i].quality, b.decision.peers[i].quality);
    EXPECT_EQ(a.decision.peers[i].novelty, b.decision.peers[i].novelty);
    EXPECT_EQ(a.decision.peers[i].combined, b.decision.peers[i].combined);
  }
  EXPECT_EQ(a.decision.estimated_result_cardinality,
            b.decision.estimated_result_cardinality);
  // Execution results: ScoredDoc::operator== compares doc and exact score.
  EXPECT_EQ(a.execution.local_results, b.execution.local_results);
  EXPECT_EQ(a.execution.per_peer_results, b.execution.per_peer_results);
  EXPECT_EQ(a.execution.merged, b.execution.merged);
  EXPECT_EQ(a.execution.all_distinct, b.execution.all_distinct);
  EXPECT_EQ(a.execution.failed_peers, b.execution.failed_peers);
  // Evaluation and traffic metering.
  EXPECT_EQ(a.recall, b.recall);
  EXPECT_EQ(a.recall_remote_only, b.recall_remote_only);
  EXPECT_EQ(a.duplicate_fraction, b.duplicate_fraction);
  EXPECT_EQ(a.distinct_results, b.distinct_results);
  EXPECT_EQ(a.routing_messages, b.routing_messages);
  EXPECT_EQ(a.routing_bytes, b.routing_bytes);
  EXPECT_EQ(a.execution_messages, b.execution_messages);
  EXPECT_EQ(a.execution_bytes, b.execution_bytes);
  EXPECT_EQ(a.routing_latency_ms, b.routing_latency_ms);
  EXPECT_EQ(a.execution_latency_ms, b.execution_latency_ms);
}

void ExpectStatsEq(const NetworkStats& a, const NetworkStats& b) {
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.latency_ms, b.latency_ms);
  EXPECT_EQ(a.messages_by_type, b.messages_by_type);
  EXPECT_EQ(a.bytes_by_type, b.bytes_by_type);
}

// Serial baseline vs batch at several thread counts, on ONE engine whose
// snapshot never changes: outcomes are metered from per-query zero deltas,
// so earlier runs cannot influence later ones. Global stats growth is
// compared run-over-run instead.
void CheckDeterminism(EngineOptions options, const IqnOptions& iqn_options,
                      size_t num_peers) {
  auto engine = MinervaEngine::Create(options, SmallCollections(num_peers));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  MinervaEngine& e = *engine.value();
  ASSERT_TRUE(e.PublishAll().ok());
  IqnRouter router(iqn_options);
  std::vector<BatchQuery> batch = MakeBatch(e, 10);

  // Serial baseline through the one-query path (no pool exists yet).
  NetworkStats before = e.network().stats();
  std::vector<QueryOutcome> serial;
  for (const BatchQuery& bq : batch) {
    auto outcome = e.RunQuery(bq.initiator_index, bq.query, router, 2);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    serial.push_back(std::move(outcome).value());
  }
  NetworkStats after_serial = e.network().stats();
  ASSERT_GT(after_serial.messages, before.messages);

  for (size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    NetworkStats start = e.network().stats();
    auto outcomes = e.RunQueryBatch(batch, router, 2, threads);
    ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
    ASSERT_EQ(outcomes.value().size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      ExpectOutcomeEq(serial[i], outcomes.value()[i], i);
    }
    // The batch folds exactly the serial loop's traffic into the globals.
    NetworkStats end = e.network().stats();
    EXPECT_EQ(end.messages - start.messages,
              after_serial.messages - before.messages);
    EXPECT_EQ(end.bytes - start.bytes, after_serial.bytes - before.bytes);
  }

  // And a fresh identical engine that only ever ran the batch ends up
  // with exactly the same global stats — per-type maps included — as the
  // serial engine had after its serial loop.
  auto fresh = MinervaEngine::Create(options, SmallCollections(num_peers));
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(fresh.value()->PublishAll().ok());
  ExpectStatsEq(fresh.value()->network().stats(), before);
  auto batch_outcomes = fresh.value()->RunQueryBatch(batch, router, 2, 4);
  ASSERT_TRUE(batch_outcomes.ok());
  ExpectStatsEq(fresh.value()->network().stats(), after_serial);
}

TEST(BatchDeterminismTest, PerPeerAggregation) {
  IqnOptions iqn;
  iqn.aggregation = AggregationStrategy::kPerPeer;
  CheckDeterminism(EngineOptions{}, iqn, /*num_peers=*/6);
}

TEST(BatchDeterminismTest, PerTermAggregation) {
  IqnOptions iqn;
  iqn.aggregation = AggregationStrategy::kPerTerm;
  CheckDeterminism(EngineOptions{}, iqn, /*num_peers=*/6);
}

TEST(BatchDeterminismTest, PerTermCorrelationAware) {
  IqnOptions iqn;
  iqn.aggregation = AggregationStrategy::kPerTerm;
  iqn.correlation_aware = true;
  CheckDeterminism(EngineOptions{}, iqn, /*num_peers=*/6);
}

TEST(BatchDeterminismTest, HistogramAggregation) {
  EngineOptions options;
  options.synopsis.histogram_cells = 4;
  IqnOptions iqn;
  iqn.use_histograms = true;
  CheckDeterminism(options, iqn, /*num_peers=*/6);
}

TEST(BatchDeterminismTest, SynopsisSeededReference) {
  EngineOptions options;
  options.seed_reference_from_synopses = true;
  IqnOptions iqn;
  CheckDeterminism(options, iqn, /*num_peers=*/6);
}

// Observability must not perturb determinism: with collect_traces on,
// the span trees (names, nesting, attributes, simulated timestamps —
// compared as canonical debug strings) are bit-identical between repeat
// runs, and between the serial path and the batch path at 1, 2, and 8
// threads.
TEST(BatchDeterminismTest, TraceTreesAreBitIdenticalAcrossThreadCounts) {
  EngineOptions options;
  options.collect_traces = true;
  auto engine = MinervaEngine::Create(options, SmallCollections(6));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  MinervaEngine& e = *engine.value();
  ASSERT_TRUE(e.PublishAll().ok());
  IqnRouter router;
  std::vector<BatchQuery> batch = MakeBatch(e, 10);

  std::vector<std::string> baseline;
  for (const BatchQuery& bq : batch) {
    auto outcome = e.RunQuery(bq.initiator_index, bq.query, router, 2);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    ASSERT_NE(outcome.value().trace, nullptr);
    baseline.push_back(outcome.value().trace->ToDebugString());
    EXPECT_FALSE(baseline.back().empty());
  }

  // Repeat serial run: same strings.
  for (size_t i = 0; i < batch.size(); ++i) {
    auto outcome =
        e.RunQuery(batch[i].initiator_index, batch[i].query, router, 2);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.value().trace->ToDebugString(), baseline[i])
        << "repeat run diverged at item " << i;
  }

  for (size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    auto outcomes = e.RunQueryBatch(batch, router, 2, threads);
    ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
    for (size_t i = 0; i < batch.size(); ++i) {
      ASSERT_NE(outcomes.value()[i].trace, nullptr);
      EXPECT_EQ(outcomes.value()[i].trace->ToDebugString(), baseline[i])
          << "batch item " << i;
    }
  }
}

TEST(BatchDeterminismTest, TracesOffByDefaultAndDoNotChangeOutcomes) {
  auto plain = MinervaEngine::Create(EngineOptions{}, SmallCollections());
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(plain.value()->PublishAll().ok());
  EngineOptions traced_options;
  traced_options.collect_traces = true;
  auto traced = MinervaEngine::Create(traced_options, SmallCollections());
  ASSERT_TRUE(traced.ok());
  ASSERT_TRUE(traced.value()->PublishAll().ok());

  IqnRouter router;
  std::vector<BatchQuery> batch = MakeBatch(*plain.value(), 6);
  for (const BatchQuery& bq : batch) {
    auto a = plain.value()->RunQuery(bq.initiator_index, bq.query, router, 2);
    auto b = traced.value()->RunQuery(bq.initiator_index, bq.query, router, 2);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value().trace, nullptr);
    EXPECT_NE(b.value().trace, nullptr);
    // Tracing is an observer: every measured number stays identical.
    ExpectOutcomeEq(a.value(), b.value(), 0);
  }
}

TEST(BatchDeterminismTest, ThreadsExceedingBatchSize) {
  auto engine = MinervaEngine::Create(EngineOptions{}, SmallCollections());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value()->PublishAll().ok());
  IqnRouter router;
  std::vector<BatchQuery> batch = MakeBatch(*engine.value(), 2);
  auto outcomes = engine.value()->RunQueryBatch(batch, router, 2, 8);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  EXPECT_EQ(outcomes.value().size(), 2u);
}

TEST(BatchDeterminismTest, EmptyBatch) {
  auto engine = MinervaEngine::Create(EngineOptions{}, SmallCollections());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value()->PublishAll().ok());
  IqnRouter router;
  auto outcomes = engine.value()->RunQueryBatch({}, router, 2, 4);
  ASSERT_TRUE(outcomes.ok());
  EXPECT_TRUE(outcomes.value().empty());
}

// The satellite fix: a batch item that fails (out-of-range initiator)
// aborts the batch with the lowest-indexed item's error, all other items
// still ran to completion, no traffic leaks into the global stats, the
// pool stays usable for the next batch, and engine destruction joins the
// pool cleanly (ThreadSanitizer would flag a leaked worker touching a
// destroyed engine).
TEST(BatchDeterminismTest, FailingItemAbortsBatchCleanly) {
  auto engine = MinervaEngine::Create(EngineOptions{}, SmallCollections());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value()->PublishAll().ok());
  IqnRouter router;
  std::vector<BatchQuery> batch = MakeBatch(*engine.value(), 8);
  batch[6].initiator_index = 99;  // fails
  batch[3].initiator_index = 77;  // fails too; lowest index wins

  NetworkStats before = engine.value()->network().stats();
  auto outcomes = engine.value()->RunQueryBatch(batch, router, 2, 4);
  ASSERT_FALSE(outcomes.ok());
  EXPECT_EQ(outcomes.status().code(), StatusCode::kInvalidArgument);
  // Aborted batches charge nothing to the global accounting.
  NetworkStats after = engine.value()->network().stats();
  EXPECT_EQ(after.messages, before.messages);
  EXPECT_EQ(after.bytes, before.bytes);

  // The pool survives the abort: the same engine immediately runs a clean
  // batch with identical results to serial.
  batch[3].initiator_index = 3;
  batch[6].initiator_index = 2;
  std::vector<QueryOutcome> serial;
  for (const BatchQuery& bq : batch) {
    auto outcome =
        engine.value()->RunQuery(bq.initiator_index, bq.query, router, 2);
    ASSERT_TRUE(outcome.ok());
    serial.push_back(std::move(outcome).value());
  }
  auto retry = engine.value()->RunQueryBatch(batch, router, 2, 4);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  for (size_t i = 0; i < batch.size(); ++i) {
    ExpectOutcomeEq(serial[i], retry.value()[i], i);
  }
  // Destructor joins the pool (end of scope) — TSan verifies the teardown.
}

// ---------------------------------------------------------------------
// Directory cache on: the cache's two-phase visibility (sessions read
// pre-batch committed state, fills commit in batch order after the join)
// must keep batches bit-identical across thread counts. Runs are
// compared across FRESH engines per thread count — a serial RunQuery
// loop commits between queries and legitimately sees more hits than a
// batch, so the cross-thread-count comparison is the meaningful one.

TEST(BatchDeterminismTest, CacheEnabledBatchBitIdenticalAcrossThreadCounts) {
  EngineOptions options;
  options.cache.enabled = true;
  // runs[t] = {cold outcomes, warm outcomes} of the engine run with
  // thread count t.
  std::vector<std::vector<QueryOutcome>> cold_runs;
  std::vector<std::vector<QueryOutcome>> warm_runs;
  for (size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    auto engine = MinervaEngine::Create(options, SmallCollections(6));
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    MinervaEngine& e = *engine.value();
    ASSERT_TRUE(e.PublishAll().ok());
    IqnRouter router;
    std::vector<BatchQuery> batch = MakeBatch(e, 10);
    // Cold batch fills the cache (commits at the join), warm batch is
    // served from it.
    auto cold = e.RunQueryBatch(batch, router, 2, threads);
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    auto warm = e.RunQueryBatch(batch, router, 2, threads);
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
    cold_runs.push_back(std::move(cold).value());
    warm_runs.push_back(std::move(warm).value());
  }
  for (size_t run = 1; run < cold_runs.size(); ++run) {
    SCOPED_TRACE(::testing::Message() << "thread-count run " << run);
    for (size_t i = 0; i < cold_runs[0].size(); ++i) {
      ExpectOutcomeEq(cold_runs[0][i], cold_runs[run][i], i);
      ExpectOutcomeEq(warm_runs[0][i], warm_runs[run][i], i);
    }
  }
  // The warm batch actually hit: it fetched less from the directory.
  uint64_t cold_bytes = 0;
  uint64_t warm_bytes = 0;
  for (const QueryOutcome& o : cold_runs[0]) cold_bytes += o.routing_bytes;
  for (const QueryOutcome& o : warm_runs[0]) warm_bytes += o.routing_bytes;
  EXPECT_LT(warm_bytes, cold_bytes);
}

// Result fields only — traffic and latency legitimately differ when
// hits skip directory RPCs.
void ExpectResultsEq(const QueryOutcome& a, const QueryOutcome& b,
                     size_t item) {
  SCOPED_TRACE(::testing::Message() << "batch item " << item);
  ASSERT_EQ(a.decision.peers.size(), b.decision.peers.size());
  for (size_t i = 0; i < a.decision.peers.size(); ++i) {
    EXPECT_EQ(a.decision.peers[i].peer_id, b.decision.peers[i].peer_id);
    EXPECT_EQ(a.decision.peers[i].quality, b.decision.peers[i].quality);
    EXPECT_EQ(a.decision.peers[i].novelty, b.decision.peers[i].novelty);
    EXPECT_EQ(a.decision.peers[i].combined, b.decision.peers[i].combined);
  }
  EXPECT_EQ(a.decision.estimated_result_cardinality,
            b.decision.estimated_result_cardinality);
  EXPECT_EQ(a.execution.local_results, b.execution.local_results);
  EXPECT_EQ(a.execution.per_peer_results, b.execution.per_peer_results);
  EXPECT_EQ(a.execution.merged, b.execution.merged);
  EXPECT_EQ(a.execution.all_distinct, b.execution.all_distinct);
  EXPECT_EQ(a.recall, b.recall);
  EXPECT_EQ(a.recall_remote_only, b.recall_remote_only);
  EXPECT_EQ(a.duplicate_fraction, b.duplicate_fraction);
  EXPECT_EQ(a.distinct_results, b.distinct_results);
}

// A hit serves the bytes a fresh fetch would return, so query RESULTS
// are identical with the cache on or off; only traffic drops.
TEST(BatchDeterminismTest, CachedResultsBitIdenticalToUncached) {
  EngineOptions cached_options;
  cached_options.cache.enabled = true;
  auto cached = MinervaEngine::Create(cached_options, SmallCollections(6));
  ASSERT_TRUE(cached.ok());
  ASSERT_TRUE(cached.value()->PublishAll().ok());
  auto uncached = MinervaEngine::Create(EngineOptions{}, SmallCollections(6));
  ASSERT_TRUE(uncached.ok());
  ASSERT_TRUE(uncached.value()->PublishAll().ok());

  IqnRouter router;
  std::vector<BatchQuery> batch = MakeBatch(*cached.value(), 10);
  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE(::testing::Message() << "round " << round);
    auto with_cache = cached.value()->RunQueryBatch(batch, router, 2, 2);
    auto without_cache = uncached.value()->RunQueryBatch(batch, router, 2, 2);
    ASSERT_TRUE(with_cache.ok());
    ASSERT_TRUE(without_cache.ok());
    for (size_t i = 0; i < batch.size(); ++i) {
      ExpectResultsEq(with_cache.value()[i], without_cache.value()[i], i);
    }
    if (round > 0) {
      // Warm rounds are cheaper on the cached engine.
      uint64_t cached_bytes = 0;
      uint64_t uncached_bytes = 0;
      for (const QueryOutcome& o : with_cache.value()) {
        cached_bytes += o.routing_bytes;
      }
      for (const QueryOutcome& o : without_cache.value()) {
        uncached_bytes += o.routing_bytes;
      }
      EXPECT_LT(cached_bytes, uncached_bytes);
    }
  }
}

}  // namespace
}  // namespace iqn

#include "minerva/engine.h"

#include <gtest/gtest.h>

#include "minerva/internal/iqn_router.h"
#include "workload/fragments.h"
#include "workload/synthetic_corpus.h"

namespace iqn {
namespace {

std::vector<Corpus> SmallCollections(size_t peers = 4, uint64_t seed = 5) {
  SyntheticCorpusOptions opts;
  opts.num_documents = 240;
  opts.vocabulary_size = 400;
  opts.min_document_length = 15;
  opts.max_document_length = 40;
  opts.seed = seed;
  auto gen = SyntheticCorpusGenerator::Create(opts);
  EXPECT_TRUE(gen.ok());
  Corpus corpus = gen.value().Generate();
  auto frags = SplitIntoFragments(corpus, peers * 2);
  EXPECT_TRUE(frags.ok());
  auto collections = SlidingWindowCollections(frags.value(), /*window=*/3,
                                              /*offset=*/2, peers);
  EXPECT_TRUE(collections.ok());
  return std::move(collections).value();
}

Query SimpleQuery(const MinervaEngine& engine) {
  // Use a frequent term from the reference index so every peer has it.
  Query q;
  size_t best_df = 0;
  for (const auto& [term, list] : engine.reference_index().lists()) {
    if (list.size() > best_df) {
      best_df = list.size();
      q.terms = {term};
    }
  }
  q.k = 20;
  return q;
}

TEST(EngineTest, CreateValidates) {
  EXPECT_FALSE(MinervaEngine::Create(EngineOptions{}, {}).ok());
}

TEST(EngineTest, BuildsPeersAndReferenceIndex) {
  auto engine = MinervaEngine::Create(EngineOptions{}, SmallCollections());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(engine.value()->num_peers(), 4u);
  EXPECT_GT(engine.value()->reference_index().NumDocuments(), 0u);
  // Reference covers the union of all collections.
  size_t union_size = 0;
  Corpus all;
  for (size_t i = 0; i < 4; ++i) all.Merge(engine.value()->peer(i).collection());
  union_size = all.size();
  EXPECT_EQ(engine.value()->reference_index().NumDocuments(), union_size);
}

TEST(EngineTest, PublishAllPopulatesDirectory) {
  auto engine = MinervaEngine::Create(EngineOptions{}, SmallCollections());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value()->PublishAll().ok());
  EXPECT_GT(engine.value()->TotalBytesSent(), 0u);

  Query q = SimpleQuery(*engine.value());
  auto candidates = engine.value()->peer(0).FetchCandidates(q);
  ASSERT_TRUE(candidates.ok());
  // Every other peer holding the term appears as a candidate.
  EXPECT_GE(candidates.value().size(), 1u);
  for (const auto& cand : candidates.value()) {
    EXPECT_NE(cand.peer_id, 0u);  // initiator excluded
    EXPECT_TRUE(cand.posts.count(q.terms[0]));
  }
}

TEST(EngineTest, RunQueryProducesOutcome) {
  auto engine = MinervaEngine::Create(EngineOptions{}, SmallCollections());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value()->PublishAll().ok());
  Query q = SimpleQuery(*engine.value());
  IqnRouter router;
  auto outcome = engine.value()->RunQuery(0, q, router, 2);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_LE(outcome.value().decision.peers.size(), 2u);
  EXPECT_FALSE(outcome.value().execution.merged.empty());
  EXPECT_GT(outcome.value().recall, 0.0);
  EXPECT_LE(outcome.value().recall, 1.0);
  EXPECT_GT(outcome.value().routing_messages, 0u);
  EXPECT_GT(outcome.value().execution_messages, 0u);
}

TEST(EngineTest, RecallGrowsWithMorePeers) {
  auto engine = MinervaEngine::Create(EngineOptions{}, SmallCollections(6));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value()->PublishAll().ok());
  Query q = SimpleQuery(*engine.value());
  IqnRouter router;
  double recall1 = 0, recall5 = 0;
  {
    auto outcome = engine.value()->RunQuery(0, q, router, 1);
    ASSERT_TRUE(outcome.ok());
    recall1 = outcome.value().recall;
  }
  {
    auto outcome = engine.value()->RunQuery(0, q, router, 5);
    ASSERT_TRUE(outcome.ok());
    recall5 = outcome.value().recall;
  }
  EXPECT_GE(recall5, recall1);
  EXPECT_GT(recall5, 0.5);  // 5 of 6 peers: most of the space covered
}

TEST(EngineTest, FullRecallWhenAllPeersQueried) {
  auto engine = MinervaEngine::Create(EngineOptions{}, SmallCollections());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value()->PublishAll().ok());
  Query q = SimpleQuery(*engine.value());
  CoriRouter router;
  auto outcome = engine.value()->RunQuery(0, q, router, 4);
  ASSERT_TRUE(outcome.ok());
  // All peers contacted -> the union holds every reference result.
  EXPECT_DOUBLE_EQ(outcome.value().recall, 1.0);
}

TEST(EngineTest, InitiatorIndexOutOfRange) {
  auto engine = MinervaEngine::Create(EngineOptions{}, SmallCollections());
  ASSERT_TRUE(engine.ok());
  IqnRouter router;
  Query q;
  q.terms = {"whatever"};
  EXPECT_FALSE(engine.value()->RunQuery(99, q, router, 2).ok());
}

TEST(EngineTest, DownPeerCountsAsFailedNotFatal) {
  auto engine = MinervaEngine::Create(EngineOptions{}, SmallCollections());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value()->PublishAll().ok());
  Query q = SimpleQuery(*engine.value());
  // Kill peer 2's node after publishing.
  ASSERT_TRUE(
      engine.value()->network().SetNodeUp(engine.value()->peer(2).address(),
                                          false)
          .ok());
  CoriRouter router;
  auto outcome = engine.value()->RunQuery(0, q, router, 3);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  // Either peer 2 was selected (then it failed) or not (0 failures).
  EXPECT_LE(outcome.value().execution.failed_peers, 1u);
}

TEST(EngineTest, HistogramConfiguredEngineSupportsHistogramRouting) {
  EngineOptions options;
  options.synopsis.histogram_cells = 4;
  auto engine = MinervaEngine::Create(options, SmallCollections());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value()->PublishAll().ok());
  Query q = SimpleQuery(*engine.value());
  IqnOptions iqn_options;
  iqn_options.use_histograms = true;
  IqnRouter router(iqn_options);
  auto outcome = engine.value()->RunQuery(0, q, router, 2);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GT(outcome.value().recall, 0.0);
}

TEST(EngineTest, BatchPostingIsCheaperAndEquivalent) {
  EngineOptions plain;
  auto e1 = MinervaEngine::Create(plain, SmallCollections());
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e1.value()->PublishAll().ok());
  uint64_t plain_bytes = e1.value()->TotalBytesSent();

  EngineOptions batched;
  batched.batch_posting = true;
  auto e2 = MinervaEngine::Create(batched, SmallCollections());
  ASSERT_TRUE(e2.ok());
  ASSERT_TRUE(e2.value()->PublishAll().ok());
  uint64_t batched_bytes = e2.value()->TotalBytesSent();

  EXPECT_LT(batched_bytes, plain_bytes);

  // Routing decisions are identical: the directory contents match.
  Query q = SimpleQuery(*e1.value());
  IqnRouter router;
  auto o1 = e1.value()->RunQuery(0, q, router, 2);
  auto o2 = e2.value()->RunQuery(0, q, router, 2);
  ASSERT_TRUE(o1.ok() && o2.ok());
  ASSERT_EQ(o1.value().decision.peers.size(), o2.value().decision.peers.size());
  for (size_t i = 0; i < o1.value().decision.peers.size(); ++i) {
    EXPECT_EQ(o1.value().decision.peers[i].peer_id,
              o2.value().decision.peers[i].peer_id);
  }
}

TEST(EngineTest, PeerlistLimitReducesRoutingBytes) {
  auto collections = SmallCollections(8);
  EngineOptions full;
  auto e1 = MinervaEngine::Create(full, SmallCollections(8));
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e1.value()->PublishAll().ok());

  EngineOptions limited;
  limited.peerlist_limit = 2;
  auto e2 = MinervaEngine::Create(limited, SmallCollections(8));
  ASSERT_TRUE(e2.ok());
  ASSERT_TRUE(e2.value()->PublishAll().ok());

  Query q = SimpleQuery(*e1.value());
  IqnRouter router;
  auto o1 = e1.value()->RunQuery(0, q, router, 2);
  auto o2 = e2.value()->RunQuery(0, q, router, 2);
  ASSERT_TRUE(o1.ok() && o2.ok());
  EXPECT_LT(o2.value().routing_bytes, o1.value().routing_bytes);
  // The limited run can only select among the fetched candidates.
  EXPECT_LE(o2.value().decision.peers.size(), 2u);
}

TEST(EngineTest, SynopsisSeededReferenceWorksEndToEnd) {
  EngineOptions options;
  options.seed_reference_from_synopses = true;
  auto engine = MinervaEngine::Create(options, SmallCollections());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value()->PublishAll().ok());
  Query q = SimpleQuery(*engine.value());
  IqnRouter router;
  auto outcome = engine.value()->RunQuery(0, q, router, 2);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GT(outcome.value().recall, 0.0);
  // The covered-space estimate starts from the initiator's full coverage
  // of the term, which exceeds its top-k result size.
  EXPECT_GE(outcome.value().decision.estimated_result_cardinality,
            static_cast<double>(q.k));
}

TEST(EngineTest, LatencyAccountedPerPhase) {
  auto engine = MinervaEngine::Create(EngineOptions{}, SmallCollections());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value()->PublishAll().ok());
  Query q = SimpleQuery(*engine.value());
  IqnRouter router;
  auto outcome = engine.value()->RunQuery(0, q, router, 2);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(outcome.value().routing_latency_ms, 0.0);
  EXPECT_GT(outcome.value().execution_latency_ms, 0.0);
}

TEST(EngineTest, CompressedBloomPostingSavesBytesAndStillRoutes) {
  EngineOptions raw_options;
  raw_options.synopsis.type = SynopsisType::kBloomFilter;
  raw_options.synopsis.bits = 4096;
  auto raw_engine = MinervaEngine::Create(raw_options, SmallCollections());
  ASSERT_TRUE(raw_engine.ok());
  ASSERT_TRUE(raw_engine.value()->PublishAll().ok());

  EngineOptions compressed_options = raw_options;
  compressed_options.synopsis.compress_bloom = true;
  auto compressed_engine =
      MinervaEngine::Create(compressed_options, SmallCollections());
  ASSERT_TRUE(compressed_engine.ok());
  ASSERT_TRUE(compressed_engine.value()->PublishAll().ok());

  // Sparse per-term filters compress well.
  EXPECT_LT(compressed_engine.value()->TotalBytesSent(),
            raw_engine.value()->TotalBytesSent() * 3 / 4);

  // Routing over compressed posts behaves identically.
  Query q = SimpleQuery(*raw_engine.value());
  IqnRouter router;
  auto raw_outcome = raw_engine.value()->RunQuery(0, q, router, 2);
  auto compressed_outcome =
      compressed_engine.value()->RunQuery(0, q, router, 2);
  ASSERT_TRUE(raw_outcome.ok() && compressed_outcome.ok());
  ASSERT_EQ(raw_outcome.value().decision.peers.size(),
            compressed_outcome.value().decision.peers.size());
  for (size_t i = 0; i < raw_outcome.value().decision.peers.size(); ++i) {
    EXPECT_EQ(raw_outcome.value().decision.peers[i].peer_id,
              compressed_outcome.value().decision.peers[i].peer_id);
  }
}

TEST(EngineTest, DistributedTopKCandidateFetchWorks) {
  EngineOptions options;
  options.distributed_topk_candidates = 3;
  auto engine = MinervaEngine::Create(options, SmallCollections(6));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value()->PublishAll().ok());
  Query q = SimpleQuery(*engine.value());

  // The candidate set surfaced by TPUT matches the 3 largest index
  // lists among the other peers (the ranking criterion).
  auto candidates = engine.value()->peer(0).FetchCandidatesTopK(q, 3);
  ASSERT_TRUE(candidates.ok()) << candidates.status().ToString();
  EXPECT_LE(candidates.value().size(), 3u);
  EXPECT_GE(candidates.value().size(), 1u);
  for (const auto& cand : candidates.value()) {
    EXPECT_NE(cand.peer_id, 0u);
    EXPECT_TRUE(cand.posts.count(q.terms[0]));
  }

  IqnRouter router;
  auto outcome = engine.value()->RunQuery(0, q, router, 2);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GT(outcome.value().recall, 0.0);
  EXPECT_LE(outcome.value().decision.peers.size(), 2u);
}

TEST(EngineTest, IncrementalCrawlRefreshesDirectoryAndRouting) {
  auto engine = MinervaEngine::Create(EngineOptions{}, SmallCollections());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value()->PublishAll().ok());
  Query q = SimpleQuery(*engine.value());
  const std::string& term = q.terms[0];

  uint64_t before = engine.value()->peer(1).index().DocumentFrequency(term);

  // Peer 1 crawls 30 new documents that all contain the query term.
  Corpus delta;
  for (DocId id = 900000; id < 900030; ++id) {
    ASSERT_TRUE(delta.AddDocumentTerms(id, {term, "fresh"}).ok());
  }
  ASSERT_TRUE(engine.value()->peer(1).AddDocuments(delta).ok());
  EXPECT_EQ(engine.value()->peer(1).index().DocumentFrequency(term),
            before + 30);

  // The directory post refreshed: another peer sees the new list length.
  auto candidates = engine.value()->peer(0).FetchCandidates(q);
  ASSERT_TRUE(candidates.ok());
  bool found = false;
  for (const auto& cand : candidates.value()) {
    if (cand.peer_id != 1) continue;
    found = true;
    EXPECT_EQ(cand.posts.at(term).list_length, before + 30);
  }
  EXPECT_TRUE(found);

  // Re-adding the same documents is a no-op for the index.
  ASSERT_TRUE(engine.value()->peer(1).AddDocuments(delta).ok());
  EXPECT_EQ(engine.value()->peer(1).index().DocumentFrequency(term),
            before + 30);
}

TEST(EngineTest, AdaptivePublishingWorksEndToEnd) {
  auto engine = MinervaEngine::Create(EngineOptions{}, SmallCollections());
  ASSERT_TRUE(engine.ok());
  // Peer 0 publishes adaptively under a budget; others publish normally.
  AdaptiveAllocationOptions alloc;
  alloc.min_bits = 64;
  alloc.max_bits = 2048;
  ASSERT_TRUE(engine.value()->peer(0)
                  .PublishPostsAdaptive(/*total_budget_bits=*/64 * 1024, alloc)
                  .ok());
  for (size_t i = 1; i < 4; ++i) {
    ASSERT_TRUE(engine.value()->peer(i).PublishPosts().ok());
  }
  Query q = SimpleQuery(*engine.value());
  IqnRouter router;
  // Initiate from peer 1 so peer 0's shorter synopses are consumed by the
  // router (heterogeneous-length MIPs interop).
  auto outcome = engine.value()->RunQuery(1, q, router, 2);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
}

}  // namespace
}  // namespace iqn

// Scenario determinism regression: the same spec produces bit-identical
// results and traces on every rerun and at every thread count. This is
// the harness-level pin of the engine's batch-determinism contract —
// faults, churn, adversaries, and the reputation book all active at
// once, so a scheduling dependence anywhere in that stack shows up as a
// fingerprint mismatch here.

#include "minerva/scenario.h"

#include <string>

#include <gtest/gtest.h>

namespace minerva {
namespace {

/// Small but fully loaded: faults, churn, batching, adversaries, and
/// the reputation defense together, with traces collected so the trace
/// fingerprint is live too.
ScenarioSpec SmallSpec() {
  ScenarioSpec spec;
  spec.name = "determinism";
  spec.corpus.documents = 400;
  spec.topology.peers = 8;
  spec.engine.retries = 2;
  spec.engine.collect_traces = true;
  spec.faults.drop_rate = 0.1;
  spec.churn.every = 8;
  spec.queries.pool = 12;
  spec.queries.rounds = 2;
  spec.queries.batch_size = 4;
  spec.adversary.fraction = 0.25;
  spec.reputation.enabled = true;
  return spec;
}

TEST(ScenarioDeterminismTest, RerunIsBitIdentical) {
  ScenarioSpec spec = SmallSpec();
  auto first = RunScenario(spec);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = RunScenario(spec);
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  EXPECT_NE(first.value().result_fingerprint, 0u);
  EXPECT_NE(first.value().trace_fingerprint, 0u);
  EXPECT_EQ(first.value().result_fingerprint,
            second.value().result_fingerprint);
  EXPECT_EQ(first.value().trace_fingerprint,
            second.value().trace_fingerprint);
  EXPECT_EQ(ScenarioResultToJson(first.value(), /*include_spec=*/true),
            ScenarioResultToJson(second.value(), /*include_spec=*/true));
}

TEST(ScenarioDeterminismTest, ThreadCountDoesNotChangeResults) {
  ScenarioSpec spec = SmallSpec();
  std::string reference;
  uint64_t reference_result_fp = 0;
  uint64_t reference_trace_fp = 0;
  for (size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    spec.engine.threads = threads;
    auto run = RunScenario(spec);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    // include_spec=false: the spec echo differs in engine.threads by
    // design; everything measured must not.
    std::string json = ScenarioResultToJson(run.value(),
                                            /*include_spec=*/false);
    if (reference.empty()) {
      reference = json;
      reference_result_fp = run.value().result_fingerprint;
      reference_trace_fp = run.value().trace_fingerprint;
      EXPECT_NE(reference_result_fp, 0u);
      EXPECT_NE(reference_trace_fp, 0u);
    } else {
      EXPECT_EQ(json, reference);
      EXPECT_EQ(run.value().result_fingerprint, reference_result_fp);
      EXPECT_EQ(run.value().trace_fingerprint, reference_trace_fp);
    }
  }
}

/// The resilience stack on top: overloaded peers, a healing partition,
/// circuit breakers, hedged backups, a deadline with brownout. Circuit
/// and hedge decisions must be pure functions of (seed, simulated time,
/// commit order), so this spec pins them the same way SmallSpec pins
/// the fault/churn/adversary stack.
ScenarioSpec ResilienceSpec() {
  ScenarioSpec spec;
  spec.name = "determinism_resilience";
  spec.corpus.documents = 400;
  spec.topology.peers = 8;
  spec.engine.retries = 2;
  spec.engine.deadline_ms = 90.0;
  spec.engine.collect_traces = true;
  spec.faults.overload.fraction = 0.25;
  spec.faults.overload.utilization = 0.9;
  spec.faults.overload.shed_rate = 0.2;
  ScenarioSpec::FaultSection::PartitionEntry partition;
  partition.name = "east_west";
  partition.groups = {{0, 1, 2, 3}, {4, 5, 6, 7}};
  partition.start_ms = 0.0;
  // Short window and cooldown relative to the run's ~2 s of simulated
  // time: the partition heals and opened circuits get probed again, so
  // hedges, circuit skips, and deadline misses all actually occur.
  partition.end_ms = 60.0;
  spec.faults.partitions.push_back(partition);
  spec.health.enabled = true;
  spec.health.error_threshold = 0.4;
  spec.health.latency_threshold_ms = 60.0;
  spec.health.cooldown_ms = 200.0;
  spec.health.brownout_threshold = 0.25;
  spec.hedging.enabled = true;
  spec.hedging.threshold_ms = 10.0;
  spec.queries.pool = 12;
  spec.queries.rounds = 2;
  spec.queries.batch_size = 4;
  return spec;
}

TEST(ScenarioDeterminismTest, ResilienceRerunIsBitIdentical) {
  ScenarioSpec spec = ResilienceSpec();
  auto first = RunScenario(spec);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = RunScenario(spec);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_NE(first.value().result_fingerprint, 0u);
  EXPECT_EQ(first.value().result_fingerprint,
            second.value().result_fingerprint);
  EXPECT_EQ(first.value().trace_fingerprint,
            second.value().trace_fingerprint);
  EXPECT_EQ(ScenarioResultToJson(first.value(), /*include_spec=*/true),
            ScenarioResultToJson(second.value(), /*include_spec=*/true));
  // The defenses actually engaged — a spec where nothing fires would
  // pin nothing.
  EXPECT_GT(first.value().hedges, 0u);
  EXPECT_GT(first.value().circuit_open_skips, 0u);
}

TEST(ScenarioDeterminismTest, ResilienceThreadCountDoesNotChangeResults) {
  ScenarioSpec spec = ResilienceSpec();
  std::string reference;
  uint64_t reference_fp = 0;
  for (size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    spec.engine.threads = threads;
    auto run = RunScenario(spec);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    std::string json = ScenarioResultToJson(run.value(),
                                            /*include_spec=*/false);
    if (reference.empty()) {
      reference = json;
      reference_fp = run.value().result_fingerprint;
      EXPECT_NE(reference_fp, 0u);
    } else {
      EXPECT_EQ(json, reference);
      EXPECT_EQ(run.value().result_fingerprint, reference_fp);
    }
  }
}

TEST(ScenarioDeterminismTest, SeedChangesResults) {
  ScenarioSpec spec = SmallSpec();
  auto base = RunScenario(spec);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  spec.seed = spec.seed + 1;
  auto shifted = RunScenario(spec);
  ASSERT_TRUE(shifted.ok()) << shifted.status().ToString();
  // Sanity that the fingerprint actually covers the outcome stream: a
  // different workload seed must not collide.
  EXPECT_NE(base.value().result_fingerprint,
            shifted.value().result_fingerprint);
}

}  // namespace
}  // namespace minerva

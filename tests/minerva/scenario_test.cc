// Scenario-spec contract tests: the checked-in scenarios/*.json are
// canonical (parse -> emit reproduces the file bytes, emission is
// idempotent), and the strict parser rejects every malformed spec with
// a descriptive Status — unknown keys at every nesting level included.

#include "minerva/scenario.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#ifndef IQN_SOURCE_DIR
#error "tests/CMakeLists.txt must define IQN_SOURCE_DIR for this test"
#endif

namespace minerva {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string ScenarioPath(const std::string& name) {
  return std::string(IQN_SOURCE_DIR) + "/scenarios/" + name + ".json";
}

const char* kGoldenSpecs[] = {
    "chaos_baseline",
    "cache_zipf",
    "adversary_inflate",
    "adversary_defended",
    "parallel_zipf",
    "overload_brownout",
    "partition_heal",
};

// ----------------------------------------------------------------------
// Goldenness: every checked-in spec is in canonical form already, so
// parse -> emit is the identity on its bytes and a second round trip
// changes nothing.

TEST(ScenarioGoldenTest, CheckedInSpecsAreCanonical) {
  for (const char* name : kGoldenSpecs) {
    SCOPED_TRACE(name);
    std::string text = ReadFile(ScenarioPath(name));
    auto spec = ParseScenarioSpec(text);
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    EXPECT_EQ(EmitScenarioSpec(spec.value()), text)
        << "spec file is not canonical; regenerate with "
           "run_scenario " << name << ".json --canonicalize";
  }
}

TEST(ScenarioGoldenTest, EmissionIsIdempotent) {
  for (const char* name : kGoldenSpecs) {
    SCOPED_TRACE(name);
    std::string text = ReadFile(ScenarioPath(name));
    auto first = ParseScenarioSpec(text);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    std::string emitted = EmitScenarioSpec(first.value());
    auto second = ParseScenarioSpec(emitted);
    ASSERT_TRUE(second.ok()) << second.status().ToString();
    EXPECT_EQ(EmitScenarioSpec(second.value()), emitted);
  }
}

TEST(ScenarioGoldenTest, MinimalSpecGetsAllDefaults) {
  auto spec = ParseScenarioSpec(R"({"name": "minimal"})");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ScenarioSpec defaults;
  defaults.name = "minimal";
  EXPECT_EQ(EmitScenarioSpec(spec.value()), EmitScenarioSpec(defaults));
}

// ----------------------------------------------------------------------
// Strictness: every malformed spec is a descriptive InvalidArgument.

struct InvalidCase {
  const char* label;
  const char* json;
  const char* expected_substring;
};

class ScenarioInvalidTest : public testing::TestWithParam<InvalidCase> {};

TEST_P(ScenarioInvalidTest, RejectsWithDescriptiveStatus) {
  const InvalidCase& c = GetParam();
  auto spec = ParseScenarioSpec(c.json);
  ASSERT_FALSE(spec.ok()) << c.label << ": parsed but should not";
  EXPECT_NE(spec.status().ToString().find(c.expected_substring),
            std::string::npos)
      << c.label << ": status was: " << spec.status().ToString();
}

const InvalidCase kInvalidCases[] = {
    // Syntax and document shape.
    {"truncated", "{", "json: offset"},
    {"trailing_garbage", R"({"name": "x"} tail)", "json: offset"},
    {"not_an_object", "[1, 2]", "the document must be an object"},
    {"duplicate_key", R"({"name": "x", "name": "y"})", "duplicate"},
    // Required fields.
    {"missing_name", R"({"seed": 1})", "\"name\" is required"},
    {"empty_name", R"({"name": ""})", "\"name\" is required"},
    {"name_not_string", R"({"name": 3})", "name must be a string"},
    // Unknown keys, one per nesting level.
    {"unknown_top_level", R"({"name": "x", "bogus": 1})",
     "unknown key 'bogus' in the top-level object"},
    {"unknown_in_corpus", R"({"name": "x", "corpus": {"bogus": 1}})",
     "unknown key 'bogus' in corpus"},
    {"unknown_in_topology", R"({"name": "x", "topology": {"bogus": 1}})",
     "unknown key 'bogus' in topology"},
    {"unknown_in_engine", R"({"name": "x", "engine": {"bogus": 1}})",
     "unknown key 'bogus' in engine"},
    {"unknown_in_transport", R"({"name": "x", "transport": {"bogus": 1}})",
     "unknown key 'bogus' in transport"},
    {"unknown_in_faults", R"({"name": "x", "faults": {"bogus": 1}})",
     "unknown key 'bogus' in faults"},
    {"unknown_in_churn", R"({"name": "x", "churn": {"bogus": 1}})",
     "unknown key 'bogus' in churn"},
    {"unknown_in_queries", R"({"name": "x", "queries": {"bogus": 1}})",
     "unknown key 'bogus' in queries"},
    {"unknown_in_adversary", R"({"name": "x", "adversary": {"bogus": 1}})",
     "unknown key 'bogus' in adversary"},
    {"unknown_in_reputation", R"({"name": "x", "reputation": {"bogus": 1}})",
     "unknown key 'bogus' in reputation"},
    // Type errors.
    {"section_not_object", R"({"name": "x", "corpus": 3})",
     "corpus must be an object"},
    {"seed_negative", R"({"name": "x", "seed": -1})",
     "seed must be a nonnegative integer"},
    {"seed_fractional", R"({"name": "x", "seed": 1.5})",
     "seed must be a nonnegative integer"},
    {"documents_string", R"({"name": "x", "corpus": {"documents": "many"}})",
     "corpus.documents must be a nonnegative integer"},
    {"cache_not_bool", R"({"name": "x", "engine": {"cache": 1}})",
     "engine.cache must be a boolean"},
    {"drop_rate_string", R"({"name": "x", "faults": {"drop_rate": "no"}})",
     "faults.drop_rate must be a number"},
    // Range violations, corpus.
    {"documents_zero", R"({"name": "x", "corpus": {"documents": 0}})",
     "corpus.documents must be >= 1"},
    {"min_doc_length_zero",
     R"({"name": "x", "corpus": {"min_doc_length": 0}})",
     "corpus.min_doc_length must be >= 1"},
    {"doc_length_inverted",
     R"({"name": "x", "corpus": {"min_doc_length": 50, "max_doc_length": 10}})",
     "corpus.max_doc_length must be >= corpus.min_doc_length"},
    {"zipf_theta_negative", R"({"name": "x", "corpus": {"zipf_theta": -1}})",
     "corpus.zipf_theta must be >= 0"},
    // Range violations, topology.
    {"one_peer", R"({"name": "x", "topology": {"peers": 1}})",
     "topology.peers must be >= 2"},
    {"window_zero", R"({"name": "x", "topology": {"window": 0}})",
     "topology.window and topology.offset must be >= 1"},
    {"subset_zero", R"({"name": "x", "topology": {"subset": 0}})",
     "topology.subset must be >= 1"},
    {"bad_partition", R"({"name": "x", "topology": {"partition": "mod"}})",
     "topology.partition: unknown partition 'mod'"},
    // Range violations, engine.
    {"bad_router", R"({"name": "x", "engine": {"router": "astar"}})",
     "engine.router: unknown router"},
    {"bad_aggregation", R"({"name": "x", "engine": {"aggregation": "avg"}})",
     "engine.aggregation: unknown aggregation"},
    {"bad_synopsis", R"({"name": "x", "engine": {"synopsis": "magic"}})",
     "engine.synopsis: unknown synopsis"},
    {"bad_merge", R"({"name": "x", "engine": {"merge": "zip"}})",
     "engine.merge: unknown merge"},
    {"synopsis_bits_zero", R"({"name": "x", "engine": {"synopsis_bits": 0}})",
     "engine.synopsis_bits must be >= 1"},
    {"max_peers_zero", R"({"name": "x", "engine": {"max_peers": 0}})",
     "engine.max_peers must be >= 1"},
    {"threads_zero", R"({"name": "x", "engine": {"threads": 0}})",
     "engine.threads must be >= 1"},
    {"retries_zero", R"({"name": "x", "engine": {"retries": 0}})",
     "engine.retries must be >= 1"},
    {"deadline_negative", R"({"name": "x", "engine": {"deadline_ms": -5}})",
     "engine.deadline_ms must be >= 0"},
    // Range violations, faults / queries.
    {"drop_rate_above_one", R"({"name": "x", "faults": {"drop_rate": 1.5}})",
     "faults.drop_rate must be in [0, 1]"},
    {"pool_zero", R"({"name": "x", "queries": {"pool": 0}})",
     "queries.pool must be >= 1"},
    {"rounds_zero", R"({"name": "x", "queries": {"rounds": 0}})",
     "queries.rounds must be >= 1"},
    {"terms_inverted",
     R"({"name": "x", "queries": {"min_terms": 4, "max_terms": 2}})",
     "queries.min_terms must be >= 1 and <= queries.max_terms"},
    {"band_inverted",
     R"({"name": "x", "queries": {"band_low": 0.5, "band_high": 0.2}})",
     "0 <= band_low < band_high <= 1"},
    {"k_zero", R"({"name": "x", "queries": {"k": 0}})",
     "queries.k must be >= 1"},
    {"zipf_s_negative", R"({"name": "x", "queries": {"zipf_s": -0.5}})",
     "queries.zipf_s must be >= 0"},
    {"batch_size_zero", R"({"name": "x", "queries": {"batch_size": 0}})",
     "queries.batch_size must be >= 1"},
    {"bad_initiator_string",
     R"({"name": "x", "queries": {"initiator": "everyone"}})",
     "queries.initiator must be \"round_robin\" or a peer index"},
    // Unknown keys, resilience sections.
    {"unknown_in_overload",
     R"({"name": "x", "faults": {"overload": {"bogus": 1}}})",
     "unknown key 'bogus' in faults.overload"},
    {"unknown_in_partition_entry",
     R"({"name": "x", "faults": {"partitions": [{"bogus": 1}]}})",
     "unknown key 'bogus' in faults.partitions[0]"},
    {"unknown_in_health", R"({"name": "x", "health": {"bogus": 1}})",
     "unknown key 'bogus' in health"},
    {"unknown_in_hedging", R"({"name": "x", "hedging": {"bogus": 1}})",
     "unknown key 'bogus' in hedging"},
    // Range violations, faults.overload.
    {"overload_not_object", R"({"name": "x", "faults": {"overload": 3}})",
     "faults.overload must be an object"},
    {"overload_fraction_above_one",
     R"({"name": "x", "faults": {"overload": {"fraction": 1.5}}})",
     "faults.overload.fraction must be in [0, 1]"},
    {"overload_utilization_one",
     R"({"name": "x", "faults": {"overload": {"utilization": 1.0}}})",
     "faults.overload.utilization must be in [0, 1)"},
    {"overload_service_zero",
     R"({"name": "x", "faults": {"overload": {"service_ms": 0}}})",
     "faults.overload.service_ms must be > 0"},
    {"overload_shed_negative",
     R"({"name": "x", "faults": {"overload": {"shed_rate": -0.1}}})",
     "faults.overload.shed_rate must be in [0, 1]"},
    // Range violations, faults.partitions.
    {"partitions_not_array",
     R"({"name": "x", "faults": {"partitions": {"groups": []}}})",
     "faults.partitions must be an array"},
    {"partition_single_group",
     R"({"name": "x", "faults": {"partitions": [
         {"groups": [[0, 1]], "end_ms": 100}]}})",
     "must list at least two groups"},
    {"partition_empty_group",
     R"({"name": "x", "faults": {"partitions": [
         {"groups": [[0], []], "end_ms": 100}]}})",
     "faults.partitions[0].groups[1] must list at least one peer"},
    {"partition_window_inverted",
     R"({"name": "x", "faults": {"partitions": [
         {"groups": [[0], [1]], "start_ms": 100, "end_ms": 100}]}})",
     "window must satisfy 0 <= start_ms < end_ms"},
    {"partition_empty_name",
     R"({"name": "x", "faults": {"partitions": [
         {"name": "", "groups": [[0], [1]], "end_ms": 100}]}})",
     "faults.partitions[0].name must be nonempty"},
    {"partition_peer_out_of_range",
     R"({"name": "x", "topology": {"peers": 4},
         "faults": {"partitions": [
           {"groups": [[0, 1], [4]], "end_ms": 100}]}})",
     "lists peer index 4, but topology.peers is 4"},
    {"partition_peer_on_both_sides",
     R"({"name": "x", "faults": {"partitions": [
         {"groups": [[0, 1], [1, 2]], "end_ms": 100}]}})",
     "lists peer index 1 more than once"},
    // Range violations, health / hedging.
    {"health_alpha_zero", R"({"name": "x", "health": {"error_alpha": 0}})",
     "health EWMA alphas must be in (0, 1]"},
    {"health_latency_alpha_above_one",
     R"({"name": "x", "health": {"latency_alpha": 1.5}})",
     "health EWMA alphas must be in (0, 1]"},
    {"health_error_threshold_zero",
     R"({"name": "x", "health": {"error_threshold": 0}})",
     "health.error_threshold must be in (0, 1]"},
    {"health_latency_threshold_negative",
     R"({"name": "x", "health": {"latency_threshold_ms": -1}})",
     "health.latency_threshold_ms must be >= 0"},
    {"health_cooldown_zero", R"({"name": "x", "health": {"cooldown_ms": 0}})",
     "health.cooldown_ms must be > 0"},
    {"health_brownout_above_one",
     R"({"name": "x", "health": {"brownout_threshold": 1.5}})",
     "health.brownout_threshold must be in [0, 1]"},
    {"health_enabled_not_bool", R"({"name": "x", "health": {"enabled": 1}})",
     "health.enabled must be a boolean"},
    {"hedging_threshold_negative",
     R"({"name": "x", "hedging": {"threshold_ms": -1}})",
     "hedging.threshold_ms must be >= 0"},
    // Range violations, adversary / reputation.
    {"fraction_above_one",
     R"({"name": "x", "adversary": {"fraction": 1.5}})",
     "adversary.fraction must be in [0, 1]"},
    {"deflating_factor", R"({"name": "x", "adversary": {"factor": 0.5}})",
     "adversary.factor must be >= 1"},
    {"bad_behavior", R"({"name": "x", "adversary": {"behavior": "sneaky"}})",
     "adversary.behavior: unknown peer behavior"},
    {"prior_zero", R"({"name": "x", "reputation": {"prior": 0}})",
     "reputation.prior must be > 0"},
    {"floor_above_one", R"({"name": "x", "reputation": {"floor": 1.5}})",
     "reputation.floor must be in [0, 1]"},
    {"sharpness_zero", R"({"name": "x", "reputation": {"sharpness": 0}})",
     "reputation.sharpness must be > 0"},
    // Transport section.
    {"transport_not_object", R"({"name": "x", "transport": 3})",
     "transport must be an object"},
    {"bad_transport_kind",
     R"({"name": "x", "transport": {"kind": "udp"}})",
     "transport.kind: unknown transport kind 'udp'"},
    {"endpoints_on_simulated",
     R"({"name": "x",
         "transport": {"kind": "simulated", "endpoints": ["h:1"]}})",
     "transport.endpoints requires transport.kind \"tcp\""},
    {"endpoint_not_string",
     R"({"name": "x", "transport": {"kind": "tcp", "endpoints": [3]}})",
     "transport.endpoints[0] must be a string"},
    {"endpoint_empty",
     R"({"name": "x", "transport": {"kind": "tcp", "endpoints": [""]}})",
     "transport.endpoints[0] must be a nonempty"},
    {"cluster_with_churn",
     R"({"name": "x",
         "transport": {"kind": "tcp", "endpoints": ["h:1", "h:2"]},
         "churn": {"every": 4}})",
     "churn requires the single-process transport"},
    {"cluster_with_drops",
     R"({"name": "x",
         "transport": {"kind": "tcp", "endpoints": ["h:1", "h:2"]},
         "faults": {"drop_rate": 0.1}})",
     "fault injection requires the single-process transport"},
    {"cluster_with_health",
     R"({"name": "x",
         "transport": {"kind": "tcp", "endpoints": ["h:1", "h:2"]},
         "health": {"enabled": true}})",
     "health tracking requires the single-process transport"},
    {"cluster_with_reputation",
     R"({"name": "x",
         "transport": {"kind": "tcp", "endpoints": ["h:1", "h:2"]},
         "reputation": {"enabled": true}})",
     "reputation requires the single-process transport"},
    {"cluster_with_batching",
     R"({"name": "x",
         "transport": {"kind": "tcp", "endpoints": ["h:1", "h:2"]},
         "queries": {"batch_size": 4}})",
     "multi-rank cluster requires queries.batch_size 1"},
    {"cluster_with_traces",
     R"({"name": "x",
         "transport": {"kind": "tcp", "endpoints": ["h:1", "h:2"]},
         "engine": {"collect_traces": true}})",
     "collect_traces requires the single-process transport"},
    {"more_ranks_than_peers",
     R"({"name": "x", "topology": {"peers": 2},
         "transport": {"kind": "tcp",
                       "endpoints": ["h:1", "h:2", "h:3"]}})",
     "more ranks than topology.peers"},
    // Cross-section validation.
    {"more_fragments_than_documents",
     R"({"name": "x", "corpus": {"documents": 100, "vocabulary": 20},
         "topology": {"peers": 80}})",
     "topology.fragments exceeds corpus.documents"},
    {"window_exceeds_fragments",
     R"({"name": "x", "topology": {"peers": 2, "window": 9}})",
     "topology.window exceeds the fragment count"},
    {"subset_exceeds_fragments",
     R"({"name": "x",
         "topology": {"peers": 4, "partition": "choose", "subset": 9}})",
     "topology.subset exceeds the fragment count"},
    {"churn_off_batch_boundary",
     R"({"name": "x", "churn": {"every": 10},
         "queries": {"batch_size": 4}})",
     "churn.every must be a multiple of queries.batch_size"},
    {"initiator_out_of_range",
     R"({"name": "x", "topology": {"peers": 10},
         "queries": {"initiator": 10}})",
     "queries.initiator is not a valid peer index"},
    {"derived_vocabulary_empty",
     R"({"name": "x", "corpus": {"documents": 4},
         "topology": {"peers": 2}})",
     "derived vocabulary is empty"},
};

INSTANTIATE_TEST_SUITE_P(
    AllCases, ScenarioInvalidTest, testing::ValuesIn(kInvalidCases),
    [](const testing::TestParamInfo<InvalidCase>& info) {
      return std::string(info.param.label);
    });

// ----------------------------------------------------------------------
// Parse fidelity: non-default values survive the round trip typed.

TEST(ScenarioParseTest, NonDefaultValuesRoundTrip) {
  const char* json = R"({
    "name": "fidelity",
    "seed": 9,
    "corpus": {"documents": 640, "vocabulary": 100},
    "topology": {"peers": 4, "partition": "choose", "subset": 2,
                 "fragments": 5},
    "engine": {"router": "cori", "synopsis": "bloom", "merge": "cori",
               "threads": 4, "cache": true},
    "transport": {"kind": "tcp", "endpoints": ["127.0.0.1:7001"]},
    "faults": {"drop_rate": 0.25,
               "overload": {"fraction": 0.5, "utilization": 0.8,
                            "service_ms": 4, "shed_rate": 0.3},
               "partitions": [{"name": "split", "groups": [[0, 1], [2, 3]],
                               "start_ms": 10, "end_ms": 90}]},
    "health": {"enabled": true, "error_alpha": 0.3, "latency_alpha": 0.6,
               "error_threshold": 0.7, "latency_threshold_ms": 55,
               "cooldown_ms": 400, "brownout_threshold": 0.2},
    "hedging": {"enabled": true, "threshold_ms": 22},
    "churn": {"every": 8, "documents": 16},
    "queries": {"pool": 6, "executions": 12, "zipf_s": 1.0,
                "batch_size": 4, "initiator": 3},
    "adversary": {"fraction": 0.5, "behavior": "poison", "factor": 2},
    "reputation": {"enabled": true, "prior": 4, "floor": 0.1,
                   "sharpness": 3}
  })";
  auto spec = ParseScenarioSpec(json);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const ScenarioSpec& s = spec.value();
  EXPECT_EQ(s.seed, 9u);
  EXPECT_EQ(s.corpus.documents, 640u);
  EXPECT_EQ(s.topology.partition, PartitionKind::kChooseCombinations);
  EXPECT_EQ(s.engine.router, RouterKind::kCori);
  EXPECT_EQ(s.engine.synopsis, iqn::SynopsisType::kBloomFilter);
  EXPECT_EQ(s.engine.merge, iqn::MergeStrategy::kCoriNormalized);
  EXPECT_EQ(s.engine.threads, 4u);
  EXPECT_TRUE(s.engine.cache);
  EXPECT_EQ(s.transport.kind, iqn::TransportKind::kTcp);
  EXPECT_EQ(s.transport.endpoints,
            (std::vector<std::string>{"127.0.0.1:7001"}));
  EXPECT_DOUBLE_EQ(s.faults.drop_rate, 0.25);
  EXPECT_DOUBLE_EQ(s.faults.overload.fraction, 0.5);
  EXPECT_DOUBLE_EQ(s.faults.overload.utilization, 0.8);
  EXPECT_DOUBLE_EQ(s.faults.overload.service_ms, 4.0);
  EXPECT_DOUBLE_EQ(s.faults.overload.shed_rate, 0.3);
  ASSERT_EQ(s.faults.partitions.size(), 1u);
  EXPECT_EQ(s.faults.partitions[0].name, "split");
  ASSERT_EQ(s.faults.partitions[0].groups.size(), 2u);
  EXPECT_EQ(s.faults.partitions[0].groups[1], (std::vector<size_t>{2, 3}));
  EXPECT_DOUBLE_EQ(s.faults.partitions[0].start_ms, 10.0);
  EXPECT_DOUBLE_EQ(s.faults.partitions[0].end_ms, 90.0);
  EXPECT_TRUE(s.health.enabled);
  EXPECT_DOUBLE_EQ(s.health.error_alpha, 0.3);
  EXPECT_DOUBLE_EQ(s.health.latency_alpha, 0.6);
  EXPECT_DOUBLE_EQ(s.health.error_threshold, 0.7);
  EXPECT_DOUBLE_EQ(s.health.latency_threshold_ms, 55.0);
  EXPECT_DOUBLE_EQ(s.health.cooldown_ms, 400.0);
  EXPECT_DOUBLE_EQ(s.health.brownout_threshold, 0.2);
  EXPECT_TRUE(s.hedging.enabled);
  EXPECT_DOUBLE_EQ(s.hedging.threshold_ms, 22.0);
  EXPECT_EQ(s.churn.every, 8u);
  EXPECT_EQ(s.queries.initiator, 3);
  EXPECT_EQ(s.adversary.behavior, iqn::PeerBehavior::kPoisonSynopses);
  EXPECT_DOUBLE_EQ(s.adversary.fraction, 0.5);
  EXPECT_TRUE(s.reputation.enabled);
  EXPECT_DOUBLE_EQ(s.reputation.sharpness, 3.0);

  auto again = ParseScenarioSpec(EmitScenarioSpec(s));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(EmitScenarioSpec(again.value()), EmitScenarioSpec(s));
}

}  // namespace
}  // namespace minerva

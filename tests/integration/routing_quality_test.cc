// The paper's headline claims, verified end-to-end on the full system:
// with overlapping collections, IQN reaches a given recall with fewer
// peers than CORI, and novelty-aware routing reduces duplicate waste.

#include <gtest/gtest.h>

#include "minerva/engine.h"
#include "minerva/internal/iqn_router.h"
#include "workload/fragments.h"
#include "workload/queries.h"
#include "workload/synthetic_corpus.h"

namespace iqn {
namespace {

struct Testbed {
  std::unique_ptr<MinervaEngine> engine;
  std::vector<Query> queries;
};

// The paper's (f choose s) setup scaled down: f = 6, s = 3 -> 20 peers,
// every document replicated at exactly 10 peers.
Testbed BuildChooseTestbed(EngineOptions options = {}) {
  Testbed tb;
  SyntheticCorpusOptions corpus_opts;
  corpus_opts.num_documents = 900;
  corpus_opts.vocabulary_size = 1200;
  corpus_opts.min_document_length = 25;
  corpus_opts.max_document_length = 70;
  corpus_opts.seed = 77;
  auto gen = SyntheticCorpusGenerator::Create(corpus_opts);
  EXPECT_TRUE(gen.ok());
  Corpus corpus = gen.value().Generate();
  auto frags = SplitIntoFragments(corpus, 6);
  EXPECT_TRUE(frags.ok());
  auto collections = ChooseCombinationCollections(frags.value(), 3);
  EXPECT_TRUE(collections.ok());

  auto engine = MinervaEngine::Create(options, std::move(collections).value());
  EXPECT_TRUE(engine.ok());
  tb.engine = std::move(engine).value();
  EXPECT_TRUE(tb.engine->PublishAll().ok());

  QueryWorkloadOptions q_opts;
  q_opts.num_queries = 6;
  q_opts.band_low = 0.01;
  q_opts.band_high = 0.15;
  q_opts.k = 40;
  q_opts.seed = 5;
  auto queries = GenerateQueries(gen.value().vocabulary(), q_opts);
  EXPECT_TRUE(queries.ok());
  tb.queries = std::move(queries).value();
  return tb;
}

double MeanRecall(Testbed& tb, const Router& router, size_t max_peers) {
  double total = 0.0;
  for (const Query& q : tb.queries) {
    auto outcome = tb.engine->RunQuery(0, q, router, max_peers);
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    total += outcome.value().recall;
  }
  return total / static_cast<double>(tb.queries.size());
}

TEST(RoutingQualityTest, IqnBeatsCoriAtLowPeerBudgets) {
  Testbed tb = BuildChooseTestbed();
  CoriRouter cori;
  IqnRouter iqn;
  // At 3 of 20 peers, the overlap structure bites: CORI picks redundant
  // high-quality peers; IQN picks complementary ones.
  double cori_recall = MeanRecall(tb, cori, 3);
  double iqn_recall = MeanRecall(tb, iqn, 3);
  EXPECT_GT(iqn_recall, cori_recall)
      << "IQN=" << iqn_recall << " CORI=" << cori_recall;
}

TEST(RoutingQualityTest, IqnApproachesFullRecallWithFewPeers) {
  Testbed tb = BuildChooseTestbed();
  IqnRouter iqn;
  // Two disjoint (f choose s) collections cover everything (e.g.
  // {0,1,2} + {3,4,5}); IQN should get very close with 3 peers.
  double recall3 = MeanRecall(tb, iqn, 3);
  EXPECT_GT(recall3, 0.8);
}

TEST(RoutingQualityTest, IqnReducesDuplicateWaste) {
  Testbed tb = BuildChooseTestbed();
  CoriRouter cori;
  IqnRouter iqn;
  double cori_dups = 0, iqn_dups = 0;
  for (const Query& q : tb.queries) {
    auto c = tb.engine->RunQuery(0, q, cori, 4);
    auto i = tb.engine->RunQuery(0, q, iqn, 4);
    ASSERT_TRUE(c.ok() && i.ok());
    cori_dups += c.value().duplicate_fraction;
    iqn_dups += i.value().duplicate_fraction;
  }
  EXPECT_LT(iqn_dups, cori_dups);
}

TEST(RoutingQualityTest, IqnBeatsRandomRouting) {
  Testbed tb = BuildChooseTestbed();
  RandomRouter random_router(17);
  IqnRouter iqn;
  EXPECT_GT(MeanRecall(tb, iqn, 3), MeanRecall(tb, random_router, 3));
}

TEST(RoutingQualityTest, RecallCurveIsMonotoneForIqn) {
  Testbed tb = BuildChooseTestbed();
  IqnRouter iqn;
  double last = 0.0;
  for (size_t peers : {1u, 2u, 4u, 8u}) {
    double recall = MeanRecall(tb, iqn, peers);
    EXPECT_GE(recall, last - 1e-9) << "peers=" << peers;
    last = recall;
  }
  EXPECT_GT(last, 0.9);  // 8 of 20 peers chosen well covers ~everything
}

TEST(RoutingQualityTest, MipsIqnAtLeastAsGoodAsBloomIqnAtEqualBits) {
  // Paper Fig. 3: at 1024 bits, MIPs-based IQN beats BF-based IQN.
  EngineOptions mips_options;
  mips_options.synopsis.type = SynopsisType::kMinWise;
  mips_options.synopsis.bits = 1024;
  Testbed mips_tb = BuildChooseTestbed(mips_options);

  EngineOptions bf_options;
  bf_options.synopsis.type = SynopsisType::kBloomFilter;
  bf_options.synopsis.bits = 1024;
  Testbed bf_tb = BuildChooseTestbed(bf_options);

  IqnRouter iqn;
  double mips_recall = MeanRecall(mips_tb, iqn, 3);
  double bf_recall = MeanRecall(bf_tb, iqn, 3);
  // The 1024-bit Bloom filters are overloaded (900-doc lists); allow a
  // small tolerance rather than demanding strict dominance on every seed.
  EXPECT_GE(mips_recall, bf_recall - 0.02)
      << "MIPs=" << mips_recall << " BF=" << bf_recall;
}

}  // namespace
}  // namespace iqn

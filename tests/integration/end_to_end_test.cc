// End-to-end pipeline tests over the whole system: synthetic corpus ->
// fragment partitioning -> engine construction -> directory publishing
// through the Chord DHT -> routing -> remote execution -> merging ->
// recall evaluation, with every message crossing the simulated network.

#include <gtest/gtest.h>

#include "minerva/engine.h"
#include "minerva/internal/iqn_router.h"
#include "workload/fragments.h"
#include "workload/queries.h"
#include "workload/synthetic_corpus.h"

namespace iqn {
namespace {

struct World {
  std::unique_ptr<MinervaEngine> engine;
  std::vector<Query> queries;

  explicit World(EngineOptions options = {}, size_t num_peers = 10,
                 uint64_t seed = 21) {
    SyntheticCorpusOptions corpus_opts;
    corpus_opts.num_documents = 600;
    corpus_opts.vocabulary_size = 900;
    corpus_opts.min_document_length = 20;
    corpus_opts.max_document_length = 60;
    corpus_opts.seed = seed;
    auto gen = SyntheticCorpusGenerator::Create(corpus_opts);
    EXPECT_TRUE(gen.ok());
    Corpus corpus = gen.value().Generate();

    auto frags = SplitIntoFragments(corpus, 20);
    EXPECT_TRUE(frags.ok());
    auto collections =
        SlidingWindowCollections(frags.value(), /*window=*/6, /*offset=*/2,
                                 num_peers);
    EXPECT_TRUE(collections.ok());

    auto e = MinervaEngine::Create(options, std::move(collections).value());
    EXPECT_TRUE(e.ok());
    engine = std::move(e).value();
    EXPECT_TRUE(engine->PublishAll().ok());

    QueryWorkloadOptions q_opts;
    q_opts.num_queries = 5;
    q_opts.band_low = 0.01;
    q_opts.band_high = 0.2;
    q_opts.k = 30;
    q_opts.seed = seed;
    auto qs = GenerateQueries(gen.value().vocabulary(), q_opts);
    EXPECT_TRUE(qs.ok());
    queries = std::move(qs).value();
  }
};

TEST(EndToEndTest, EveryQuerySucceedsWithEveryRouter) {
  World world;
  RandomRouter random_router(3);
  CoriRouter cori_router;
  SimpleOverlapRouter overlap_router;
  IqnRouter iqn_router;
  const Router* routers[] = {&random_router, &cori_router, &overlap_router,
                             &iqn_router};
  for (const Router* router : routers) {
    for (const Query& q : world.queries) {
      auto outcome = world.engine->RunQuery(0, q, *router, 3);
      ASSERT_TRUE(outcome.ok())
          << router->name() << ": " << outcome.status().ToString();
      EXPECT_LE(outcome.value().recall, 1.0);
      EXPECT_LE(outcome.value().decision.peers.size(), 3u);
    }
  }
}

TEST(EndToEndTest, QueryCostsArePhaseSeparatedAndPositive) {
  World world;
  IqnRouter router;
  auto outcome = world.engine->RunQuery(2, world.queries[0], router, 3);
  ASSERT_TRUE(outcome.ok());
  // Routing phase: directory lookups over the DHT cost messages.
  EXPECT_GT(outcome.value().routing_messages, 0u);
  EXPECT_GT(outcome.value().routing_bytes, 0u);
  // Execution phase: one RPC round trip per selected peer.
  EXPECT_EQ(outcome.value().execution_messages,
            2 * outcome.value().decision.peers.size());
}

TEST(EndToEndTest, ResultsComeFromSelectedPeersPlusInitiator) {
  World world;
  IqnRouter router;
  const Query& q = world.queries[1];
  auto outcome = world.engine->RunQuery(0, q, router, 2);
  ASSERT_TRUE(outcome.ok());
  const auto& exec = outcome.value().execution;
  ASSERT_EQ(exec.per_peer_results.size(), outcome.value().decision.peers.size());
  // Every returned document is genuinely in the responding peer's
  // collection.
  for (size_t i = 0; i < exec.per_peer_results.size(); ++i) {
    const Peer& responder =
        world.engine->peer(outcome.value().decision.peers[i].peer_id);
    for (const ScoredDoc& sd : exec.per_peer_results[i]) {
      EXPECT_TRUE(responder.collection().ContainsDoc(sd.doc));
    }
  }
}

TEST(EndToEndTest, MergedResultsAreDedupedAndSorted) {
  World world;
  IqnRouter router;
  auto outcome = world.engine->RunQuery(0, world.queries[2], router, 4);
  ASSERT_TRUE(outcome.ok());
  const auto& merged = outcome.value().execution.merged;
  std::unordered_set<DocId> seen;
  for (size_t i = 0; i < merged.size(); ++i) {
    EXPECT_TRUE(seen.insert(merged[i].doc).second);
    if (i > 0) {
      EXPECT_GE(merged[i - 1].score, merged[i].score);
    }
  }
  EXPECT_LE(merged.size(), world.queries[2].k);
}

TEST(EndToEndTest, BloomFilterSystemWorksEndToEnd) {
  EngineOptions options;
  options.synopsis.type = SynopsisType::kBloomFilter;
  options.synopsis.bits = 2048;
  World world(options);
  IqnRouter router;
  auto outcome = world.engine->RunQuery(0, world.queries[0], router, 3);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GT(outcome.value().recall, 0.0);
}

TEST(EndToEndTest, HashSketchSystemWorksEndToEnd) {
  EngineOptions options;
  options.synopsis.type = SynopsisType::kHashSketch;
  World world(options);
  IqnRouter router;
  auto outcome = world.engine->RunQuery(0, world.queries[0], router, 3);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GT(outcome.value().recall, 0.0);
}

TEST(EndToEndTest, ConjunctiveMultiTermQueryEndToEnd) {
  World world;
  // Build a conjunctive query from two terms that co-occur in the
  // reference index.
  const auto& lists = world.engine->reference_index().lists();
  Query q;
  q.mode = QueryMode::kConjunctive;
  q.k = 20;
  for (const auto& [term, list] : lists) {
    if (list.size() > 40) {
      q.terms.push_back(term);
      if (q.terms.size() == 2) break;
    }
  }
  ASSERT_EQ(q.terms.size(), 2u);

  IqnRouter router;
  auto outcome = world.engine->RunQuery(0, q, router, 3);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  // Every retrieved document genuinely matches the conjunction in the
  // responding peer's collection.
  std::vector<ScoredDoc> reference = world.engine->ReferenceResults(q);
  if (!reference.empty()) {
    EXPECT_GT(outcome.value().recall, 0.0);
  }
}

TEST(EndToEndTest, LogLogSystemWorksEndToEnd) {
  EngineOptions options;
  options.synopsis.type = SynopsisType::kLogLog;
  World world(options);
  IqnRouter router;
  auto outcome = world.engine->RunQuery(0, world.queries[0], router, 3);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GT(outcome.value().recall, 0.0);
}

TEST(EndToEndTest, DirectoryReplicationCostsMoreBandwidth) {
  uint64_t bytes_r1 = 0, bytes_r3 = 0;
  {
    World world;
    bytes_r1 = world.engine->TotalBytesSent();
  }
  {
    EngineOptions options;
    options.directory_replication = 3;
    World world(options);
    bytes_r3 = world.engine->TotalBytesSent();
  }
  EXPECT_GT(bytes_r3, bytes_r1);
}

TEST(EndToEndTest, DeterministicAcrossRuns) {
  World w1(EngineOptions{}, 10, 33), w2(EngineOptions{}, 10, 33);
  IqnRouter router;
  auto o1 = w1.engine->RunQuery(0, w1.queries[0], router, 3);
  auto o2 = w2.engine->RunQuery(0, w2.queries[0], router, 3);
  ASSERT_TRUE(o1.ok() && o2.ok());
  EXPECT_DOUBLE_EQ(o1.value().recall, o2.value().recall);
  ASSERT_EQ(o1.value().decision.peers.size(), o2.value().decision.peers.size());
  for (size_t i = 0; i < o1.value().decision.peers.size(); ++i) {
    EXPECT_EQ(o1.value().decision.peers[i].peer_id,
              o2.value().decision.peers[i].peer_id);
  }
}

}  // namespace
}  // namespace iqn

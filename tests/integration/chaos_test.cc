// Chaos tests: the full pipeline under an injected FaultPlan. Sweeps
// drop rates with fixed seeds and checks the three load-bearing
// properties of the fault layer: (1) a zero-rate plan changes nothing,
// (2) the whole faulted run is bit-identical across repeat runs and
// across batch thread counts, and (3) queries degrade gracefully —
// they keep returning ranked results with an honest DegradationReport
// instead of erroring.
//
// The CI chaos job runs this suite under several seeds via the
// IQN_CHAOS_SEED environment variable (default 7).

#include <gtest/gtest.h>

#include "net/network.h"

#include <cstdlib>

#include "minerva/engine.h"
#include "minerva/internal/iqn_router.h"
#include "util/metrics.h"
#include "workload/fragments.h"
#include "workload/queries.h"
#include "workload/synthetic_corpus.h"

namespace iqn {
namespace {

uint64_t ChaosSeed() {
  const char* env = std::getenv("IQN_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 7;
  return std::strtoull(env, nullptr, 10);
}

struct World {
  std::unique_ptr<MinervaEngine> engine;
  std::vector<Query> queries;

  explicit World(EngineOptions options = {}, size_t num_peers = 10,
                 uint64_t seed = 21) {
    SyntheticCorpusOptions corpus_opts;
    corpus_opts.num_documents = 600;
    corpus_opts.vocabulary_size = 900;
    corpus_opts.min_document_length = 20;
    corpus_opts.max_document_length = 60;
    corpus_opts.seed = seed;
    auto gen = SyntheticCorpusGenerator::Create(corpus_opts);
    EXPECT_TRUE(gen.ok());
    Corpus corpus = gen.value().Generate();

    auto frags = SplitIntoFragments(corpus, 20);
    EXPECT_TRUE(frags.ok());
    auto collections = SlidingWindowCollections(frags.value(), /*window=*/6,
                                                /*offset=*/2, num_peers);
    EXPECT_TRUE(collections.ok());

    auto e = MinervaEngine::Create(options, std::move(collections).value());
    EXPECT_TRUE(e.ok());
    engine = std::move(e).value();
    EXPECT_TRUE(engine->PublishAll().ok());

    QueryWorkloadOptions q_opts;
    q_opts.num_queries = 8;
    q_opts.band_low = 0.01;
    q_opts.band_high = 0.2;
    q_opts.k = 30;
    q_opts.seed = seed;
    auto qs = GenerateQueries(gen.value().vocabulary(), q_opts);
    EXPECT_TRUE(qs.ok());
    queries = std::move(qs).value();
  }

  std::vector<MinervaEngine::BatchQuery> Batch() const {
    std::vector<MinervaEngine::BatchQuery> batch;
    for (size_t i = 0; i < queries.size(); ++i) {
      batch.push_back({i % engine->num_peers(), queries[i]});
    }
    return batch;
  }
};

EngineOptions RetryingOptions() {
  EngineOptions options;
  options.retry.max_attempts = 3;
  options.retry.jitter_seed = 17;
  return options;
}

void ExpectOutcomesIdentical(const QueryOutcome& a, const QueryOutcome& b) {
  EXPECT_DOUBLE_EQ(a.recall, b.recall);
  EXPECT_DOUBLE_EQ(a.recall_remote_only, b.recall_remote_only);
  EXPECT_EQ(a.distinct_results, b.distinct_results);
  EXPECT_EQ(a.routing_messages, b.routing_messages);
  EXPECT_EQ(a.routing_bytes, b.routing_bytes);
  EXPECT_EQ(a.execution_messages, b.execution_messages);
  EXPECT_EQ(a.execution_bytes, b.execution_bytes);
  EXPECT_DOUBLE_EQ(a.routing_latency_ms, b.routing_latency_ms);
  EXPECT_DOUBLE_EQ(a.execution_latency_ms, b.execution_latency_ms);
  ASSERT_EQ(a.decision.peers.size(), b.decision.peers.size());
  for (size_t i = 0; i < a.decision.peers.size(); ++i) {
    EXPECT_EQ(a.decision.peers[i].peer_id, b.decision.peers[i].peer_id);
  }
  EXPECT_EQ(a.degradation.rpc_retries, b.degradation.rpc_retries);
  EXPECT_EQ(a.degradation.faults_survived, b.degradation.faults_survived);
  EXPECT_EQ(a.degradation.peers_failed, b.degradation.peers_failed);
  EXPECT_EQ(a.degradation.peers_replaced, b.degradation.peers_replaced);
  EXPECT_EQ(a.degradation.candidates_degraded, b.degradation.candidates_degraded);
  EXPECT_EQ(a.degradation.term_fetches_failed, b.degradation.term_fetches_failed);
  EXPECT_EQ(a.degradation.partial, b.degradation.partial);
}

TEST(ChaosTest, ZeroRateFaultPlanChangesNothing) {
  World plain, chaotic;
  FaultPlan zero;
  zero.seed = ChaosSeed();  // seed alone must be inert
  chaotic.engine->network().InstallFaultPlan(zero);

  IqnRouter router;
  for (size_t i = 0; i < plain.queries.size(); ++i) {
    auto a = plain.engine->RunQuery(0, plain.queries[i], router, 3);
    auto b = chaotic.engine->RunQuery(0, chaotic.queries[i], router, 3);
    ASSERT_TRUE(a.ok() && b.ok());
    ExpectOutcomesIdentical(a.value(), b.value());
    EXPECT_EQ(b.value().degradation.faults_survived, 0u);
  }
  EXPECT_EQ(plain.engine->network().stats().messages,
            chaotic.engine->network().stats().messages);
  EXPECT_EQ(plain.engine->network().stats().bytes,
            chaotic.engine->network().stats().bytes);
  EXPECT_DOUBLE_EQ(plain.engine->network().stats().latency_ms,
                   chaotic.engine->network().stats().latency_ms);
  EXPECT_EQ(chaotic.engine->network().stats().faults_injected, 0u);
}

TEST(ChaosTest, FaultedRunIsBitIdenticalAcrossRepeatRuns) {
  auto run = [] {
    World world(RetryingOptions());
    world.engine->network().InstallFaultPlan(
        FaultPlan::MessageDrop(ChaosSeed(), 0.1));
    IqnRouter router;
    std::vector<QueryOutcome> outcomes;
    for (const Query& q : world.queries) {
      auto o = world.engine->RunQuery(0, q, router, 3);
      EXPECT_TRUE(o.ok()) << o.status().ToString();
      if (o.ok()) outcomes.push_back(std::move(o).value());
    }
    return outcomes;
  };
  std::vector<QueryOutcome> first = run();
  std::vector<QueryOutcome> second = run();
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    ExpectOutcomesIdentical(first[i], second[i]);
  }
}

TEST(ChaosTest, FaultedBatchIsBitIdenticalAcrossThreadCounts) {
  auto run = [](size_t threads) {
    World world(RetryingOptions());
    world.engine->network().InstallFaultPlan(
        FaultPlan::MessageDrop(ChaosSeed(), 0.1));
    IqnRouter router;
    auto outcomes =
        world.engine->RunQueryBatch(world.Batch(), router, 3, threads);
    EXPECT_TRUE(outcomes.ok()) << outcomes.status().ToString();
    NetworkStats stats = world.engine->network().stats();
    return std::make_pair(std::move(outcomes).value(), std::move(stats));
  };
  auto [serial, serial_stats] = run(1);
  for (size_t threads : {2u, 8u}) {
    auto [parallel, parallel_stats] = run(threads);
    ASSERT_EQ(serial.size(), parallel.size()) << threads << " threads";
    for (size_t i = 0; i < serial.size(); ++i) {
      ExpectOutcomesIdentical(serial[i], parallel[i]);
    }
    // Global accounting — including fault and retry totals — folds to
    // the same numbers no matter how the batch was scheduled.
    EXPECT_EQ(serial_stats.messages, parallel_stats.messages);
    EXPECT_EQ(serial_stats.bytes, parallel_stats.bytes);
    EXPECT_DOUBLE_EQ(serial_stats.latency_ms, parallel_stats.latency_ms);
    EXPECT_EQ(serial_stats.faults_injected, parallel_stats.faults_injected);
    EXPECT_EQ(serial_stats.rpc_retries, parallel_stats.rpc_retries);
    EXPECT_DOUBLE_EQ(serial_stats.retry_backoff_ms,
                     parallel_stats.retry_backoff_ms);
  }
}

TEST(ChaosTest, QueriesDegradeGracefullyUnderModerateDrops) {
  World world(RetryingOptions());
  world.engine->network().InstallFaultPlan(
      FaultPlan::MessageDrop(ChaosSeed(), 0.1));
  IqnRouter router;
  uint64_t faults_seen = 0;
  double recall_sum = 0.0;
  for (const Query& q : world.queries) {
    // Under 10% message drop every query must still complete and
    // return a ranked result — degradation, not failure.
    auto o = world.engine->RunQuery(0, q, router, 3);
    ASSERT_TRUE(o.ok()) << o.status().ToString();
    EXPECT_FALSE(o.value().execution.all_distinct.empty());
    faults_seen += o.value().degradation.faults_survived;
    recall_sum += o.value().recall;
  }
  // The plan is genuinely firing at this rate over this much traffic.
  EXPECT_GT(faults_seen, 0u);
  EXPECT_GT(recall_sum / world.queries.size(), 0.0);
  // Per-query fault accounting sums to the injector's global counters
  // and to the network-wide total.
  const Transport& net = world.engine->network();
  EXPECT_EQ(net.stats().faults_injected, faults_seen);
  EXPECT_EQ(net.fault_injector()->counters().total(), faults_seen);
}

TEST(ChaosTest, RetriesRecoverMostRecallUnderDrops) {
  auto mean_recall = [](EngineOptions options, double drop_rate) {
    World world(options);
    if (drop_rate > 0.0) {
      world.engine->network().InstallFaultPlan(
          FaultPlan::MessageDrop(ChaosSeed(), drop_rate));
    }
    IqnRouter router;
    double sum = 0.0;
    for (const Query& q : world.queries) {
      auto o = world.engine->RunQuery(0, q, router, 3);
      EXPECT_TRUE(o.ok()) << o.status().ToString();
      if (o.ok()) sum += o.value().recall;
    }
    return sum / world.queries.size();
  };
  double fault_free = mean_recall(EngineOptions{}, 0.0);
  double with_retries = mean_recall(RetryingOptions(), 0.1);
  double without_retries = mean_recall(EngineOptions{}, 0.1);
  // Retry + degradation machinery keeps recall close to fault-free at a
  // 10% drop rate (ISSUE acceptance bound; the chaos bench records the
  // exact sweep) and no worse than the naive single-attempt run.
  EXPECT_GE(with_retries, fault_free - 0.05 * fault_free - 1e-12);
  EXPECT_GE(with_retries, without_retries - 1e-12);
}

TEST(ChaosTest, DeadlineBudgetProducesPartialNotError) {
  EngineOptions options = RetryingOptions();
  // A budget tight enough that some queries exhaust it mid-execution.
  options.query_deadline_ms = 30.0;
  World world(options);
  world.engine->network().InstallFaultPlan(
      FaultPlan::MessageDrop(ChaosSeed(), 0.15));
  IqnRouter router;
  for (const Query& q : world.queries) {
    auto o = world.engine->RunQuery(0, q, router, 3);
    // Budget exhaustion degrades the query; it never errors it.
    ASSERT_TRUE(o.ok()) << o.status().ToString();
  }
}

TEST(ChaosTest, CorruptionIsSurvivedAndReportedNotErrored) {
  // Corrupted responses hit whatever decoder receives them: a mangled
  // directory response fails the term fetch (candidates shrink), a
  // mangled peer.query response fails that peer (replacement kicks in),
  // and a mangled synopsis blob that still frames as a Post downgrades
  // its candidate to CORI-only. Which of these fires depends on where
  // the corruption lands for the given seed — what must hold for EVERY
  // seed is that queries succeed and the damage is reported. (The
  // CORI-only downgrade itself is pinned deterministically in
  // iqn_router_test.cc.)
  World world(RetryingOptions());
  FaultPlan plan;
  plan.seed = ChaosSeed();
  plan.corrupt_response.rate = 0.4;
  world.engine->network().InstallFaultPlan(plan);
  IqnRouter router;
  uint64_t damage_reported = 0;
  uint64_t faults_seen = 0;
  for (const Query& q : world.queries) {
    auto o = world.engine->RunQuery(0, q, router, 3);
    ASSERT_TRUE(o.ok()) << o.status().ToString();
    const DegradationReport& d = o.value().degradation;
    damage_reported += d.term_fetches_failed + d.peers_failed +
                       d.candidates_degraded;
    faults_seen += d.faults_survived;
  }
  EXPECT_GT(faults_seen, 0u);
  EXPECT_GT(damage_reported, 0u);
}

// Observability under chaos: a faulted run's trace trees — including the
// per-attempt RPC annotations the retry layer writes — are bit-identical
// across repeat runs and across batch thread counts.
TEST(ChaosTest, FaultedTraceTreesAreBitIdenticalAcrossRuns) {
  auto run = [](size_t threads) {
    EngineOptions options = RetryingOptions();
    options.collect_traces = true;
    World world(options);
    world.engine->network().InstallFaultPlan(
        FaultPlan::MessageDrop(ChaosSeed(), 0.1));
    IqnRouter router;
    auto outcomes =
        world.engine->RunQueryBatch(world.Batch(), router, 3, threads);
    EXPECT_TRUE(outcomes.ok()) << outcomes.status().ToString();
    std::vector<std::string> trees;
    for (const QueryOutcome& o : outcomes.value()) {
      EXPECT_NE(o.trace, nullptr);
      trees.push_back(o.trace->ToDebugString());
    }
    return trees;
  };
  std::vector<std::string> serial = run(1);
  std::vector<std::string> serial_again = run(1);
  ASSERT_EQ(serial.size(), serial_again.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], serial_again[i]) << "repeat run, item " << i;
  }
  for (size_t threads : {2u, 8u}) {
    std::vector<std::string> parallel = run(threads);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i], parallel[i])
          << threads << " threads, item " << i;
    }
  }
}

// The per-query fault exposure feeds class-keyed registry histograms
// (fault.per_query.<class>), and the per-query class map folds into the
// global stats — without changing what the queries return.
TEST(ChaosTest, FaultClassBreakdownIsAccountedPerQueryAndGlobally) {
  World world(RetryingOptions());
  world.engine->network().InstallFaultPlan(
      FaultPlan::MessageDrop(ChaosSeed(), 0.15));
  MetricsRegistry& registry = MetricsRegistry::Default();
  MetricsSnapshot before = registry.Snapshot();
  IqnRouter router;
  uint64_t faults_from_queries = 0;
  for (const Query& q : world.queries) {
    auto o = world.engine->RunQuery(0, q, router, 3);
    ASSERT_TRUE(o.ok()) << o.status().ToString();
    faults_from_queries += o.value().degradation.faults_survived;
  }
  const NetworkStats& stats = world.engine->network().stats();
  ASSERT_GT(stats.faults_injected, 0u);
  // The class map partitions the fault total exactly.
  uint64_t by_class = 0;
  for (const auto& [klass, count] : stats.faults_by_class) by_class += count;
  EXPECT_EQ(by_class, stats.faults_injected);
  EXPECT_EQ(faults_from_queries, stats.faults_injected);
  // Registry histograms observed one value per query per touched class.
  MetricsSnapshot after = registry.Snapshot();
  uint64_t histogram_observations = 0;
  for (const auto& [name, data] : after.histograms) {
    if (name.rfind("fault.per_query.", 0) != 0) continue;
    uint64_t prior = 0;
    auto it = before.histograms.find(name);
    if (it != before.histograms.end()) prior = it->second.count;
    histogram_observations += data.count - prior;
  }
  EXPECT_GT(histogram_observations, 0u);
}

// Directory cache + faults: the cache's two-phase commit schedule and
// the fault injector's deterministic draws must compose — a faulted,
// cache-enabled batch stays bit-identical across thread counts. Runs
// are compared across fresh worlds per thread count (cold batch fills,
// warm batch serves hits; both phases must be schedule-independent).
TEST(ChaosTest, CacheEnabledFaultedBatchBitIdenticalAcrossThreadCounts) {
  auto run = [](size_t threads) {
    EngineOptions options = RetryingOptions();
    options.cache.enabled = true;
    World world(options);
    world.engine->network().InstallFaultPlan(
        FaultPlan::MessageDrop(ChaosSeed(), 0.1));
    IqnRouter router;
    auto cold = world.engine->RunQueryBatch(world.Batch(), router, 3, threads);
    EXPECT_TRUE(cold.ok()) << cold.status().ToString();
    auto warm = world.engine->RunQueryBatch(world.Batch(), router, 3, threads);
    EXPECT_TRUE(warm.ok()) << warm.status().ToString();
    return std::make_pair(std::move(cold).value(), std::move(warm).value());
  };
  auto [cold_serial, warm_serial] = run(1);
  for (size_t threads : {2u, 8u}) {
    auto [cold, warm] = run(threads);
    ASSERT_EQ(cold_serial.size(), cold.size()) << threads << " threads";
    for (size_t i = 0; i < cold_serial.size(); ++i) {
      ExpectOutcomesIdentical(cold_serial[i], cold[i]);
      ExpectOutcomesIdentical(warm_serial[i], warm[i]);
    }
  }
}

// Result fields only — a cache hit legitimately changes traffic and
// latency, never what the query returns.
void ExpectResultsIdentical(const QueryOutcome& a, const QueryOutcome& b) {
  EXPECT_DOUBLE_EQ(a.recall, b.recall);
  EXPECT_DOUBLE_EQ(a.recall_remote_only, b.recall_remote_only);
  EXPECT_EQ(a.distinct_results, b.distinct_results);
  ASSERT_EQ(a.decision.peers.size(), b.decision.peers.size());
  for (size_t i = 0; i < a.decision.peers.size(); ++i) {
    EXPECT_EQ(a.decision.peers[i].peer_id, b.decision.peers[i].peer_id);
    EXPECT_EQ(a.decision.peers[i].quality, b.decision.peers[i].quality);
    EXPECT_EQ(a.decision.peers[i].novelty, b.decision.peers[i].novelty);
    EXPECT_EQ(a.decision.peers[i].combined, b.decision.peers[i].combined);
  }
  EXPECT_EQ(a.execution.merged, b.execution.merged);
  EXPECT_EQ(a.execution.all_distinct, b.execution.all_distinct);
}

// The versioned cache must never pin a stale entry when republish
// traffic is lossy. Cached and uncached worlds built from the same seed
// see IDENTICAL republish traffic (the cache only affects query-time
// directory fetches), hence identical fault draws and identical
// post-churn directory state — whether a given refresh put was applied
// (version bump -> invalidation -> fresh fetch) or dropped in flight
// (no bump -> the cached entry still matches what the directory holds).
// Either way, post-churn results must be bit-identical to uncached.
TEST(ChaosTest, DroppedRepublishDoesNotPinStaleCacheEntry) {
  EngineOptions cached_options;
  cached_options.cache.enabled = true;
  World cached(cached_options);
  World uncached;
  IqnRouter router;
  // Warm the cache fault-free.
  for (const Query& q : cached.queries) {
    EXPECT_TRUE(cached.engine->RunQuery(0, q, router, 3).ok());
    EXPECT_TRUE(uncached.engine->RunQuery(0, q, router, 3).ok());
  }
  MetricsRegistry& registry = MetricsRegistry::Default();
  uint64_t hits_before = registry.GetCounter("cache.hits")->Value();

  // Churn under message drops: the refresh of some touched terms is
  // lost in flight, in both worlds alike.
  FaultPlan drops = FaultPlan::MessageDrop(ChaosSeed(), 0.3);
  cached.engine->network().InstallFaultPlan(drops);
  uncached.engine->network().InstallFaultPlan(drops);
  SyntheticCorpusOptions delta_opts;
  delta_opts.num_documents = 60;
  delta_opts.vocabulary_size = 900;
  delta_opts.min_document_length = 20;
  delta_opts.max_document_length = 60;
  delta_opts.first_doc_id = 100000;
  delta_opts.vocabulary_seed = 21;  // the World vocabulary
  delta_opts.seed = 22;             // fresh sampling over it
  auto delta_gen = SyntheticCorpusGenerator::Create(delta_opts);
  ASSERT_TRUE(delta_gen.ok());
  Corpus delta = delta_gen.value().Generate();
  Status a = cached.engine->peer(1).AddDocuments(delta, /*republish=*/true);
  Status b = uncached.engine->peer(1).AddDocuments(delta, /*republish=*/true);
  // Identical traffic, identical fault schedule: whatever happened to
  // the republish happened to both worlds.
  EXPECT_EQ(a.ToString(), b.ToString());
  cached.engine->RebuildReferenceIndex();
  uncached.engine->RebuildReferenceIndex();

  // Queries run fault-free again; only the churn was lossy. Two passes:
  // the first re-fills whatever the republish invalidated, the second
  // is served warm — both must match the uncached world exactly.
  cached.engine->network().InstallFaultPlan(FaultPlan{});
  uncached.engine->network().InstallFaultPlan(FaultPlan{});
  for (int pass = 0; pass < 2; ++pass) {
    SCOPED_TRACE(::testing::Message() << "post-churn pass " << pass);
    for (const Query& q : cached.queries) {
      auto with_cache = cached.engine->RunQuery(0, q, router, 3);
      auto without_cache = uncached.engine->RunQuery(0, q, router, 3);
      ASSERT_TRUE(with_cache.ok()) << with_cache.status().ToString();
      ASSERT_TRUE(without_cache.ok()) << without_cache.status().ToString();
      ExpectResultsIdentical(with_cache.value(), without_cache.value());
    }
  }
  // The post-churn passes genuinely exercised the cache.
  EXPECT_GT(registry.GetCounter("cache.hits")->Value(), hits_before);
}

}  // namespace
}  // namespace iqn

// Churn scenarios: peers failing abruptly, leaving gracefully, and
// joining — the "high dynamics" P2P setting the paper designs for.

#include <gtest/gtest.h>

#include "net/network.h"

#include "minerva/engine.h"
#include "util/random.h"
#include "minerva/internal/iqn_router.h"
#include "workload/fragments.h"
#include "workload/synthetic_corpus.h"

namespace iqn {
namespace {

std::vector<Corpus> Collections(size_t peers, uint64_t seed = 44) {
  SyntheticCorpusOptions opts;
  opts.num_documents = 400;
  opts.vocabulary_size = 600;
  opts.min_document_length = 15;
  opts.max_document_length = 40;
  opts.seed = seed;
  auto gen = SyntheticCorpusGenerator::Create(opts);
  EXPECT_TRUE(gen.ok());
  auto frags = SplitIntoFragments(gen.value().Generate(), peers * 2);
  EXPECT_TRUE(frags.ok());
  auto collections =
      SlidingWindowCollections(frags.value(), 4, 2, peers);
  EXPECT_TRUE(collections.ok());
  return std::move(collections).value();
}

Query FrequentTermQuery(const MinervaEngine& engine) {
  Query q;
  size_t best = 0;
  for (const auto& [term, list] : engine.reference_index().lists()) {
    if (list.size() > best) {
      best = list.size();
      q.terms = {term};
    }
  }
  q.k = 20;
  return q;
}

TEST(ChurnTest, QueriesSurviveSingleDirectoryNodeFailure) {
  EngineOptions options;
  options.directory_replication = 3;
  auto engine = MinervaEngine::Create(options, Collections(10));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value()->PublishAll().ok());
  Query q = FrequentTermQuery(*engine.value());

  // Kill one peer (it is simultaneously a directory node) and repair.
  ASSERT_TRUE(
      engine.value()->network().SetNodeUp(engine.value()->peer(7).address(),
                                          false)
          .ok());
  ASSERT_TRUE(engine.value()->ring().RunMaintenance(12).ok());

  IqnRouter router;
  auto outcome = engine.value()->RunQuery(0, q, router, 3);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GT(outcome.value().recall, 0.0);
}

TEST(ChurnTest, SelectedPeerFailingMidQueryIsTolerated) {
  // Replicated directory so the PeerLists survive the peer kills below:
  // the interesting failure is the EXECUTION peers dying, not the
  // directory forgetting them (with replication 1 the stale posts die
  // with their owners and the second routing would select nobody).
  EngineOptions options;
  options.directory_replication = 3;
  auto engine = MinervaEngine::Create(options, Collections(8));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value()->PublishAll().ok());
  Query q = FrequentTermQuery(*engine.value());

  // Route first (peer lists intact), then kill every selected peer before
  // execution by running the query again after the failure: the outcome
  // must degrade gracefully, not error.
  IqnRouter router;
  auto first = engine.value()->RunQuery(0, q, router, 3);
  ASSERT_TRUE(first.ok());
  for (const auto& p : first.value().decision.peers) {
    ASSERT_TRUE(engine.value()->network().SetNodeUp(p.address, false).ok());
  }
  ASSERT_TRUE(engine.value()->ring().RunMaintenance(12).ok());
  auto second = engine.value()->RunQuery(0, q, router, 3);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  // Peer lists still contain the dead peers (no re-publish), so routing
  // re-selects them: EVERY selected peer fails, and Select-Best-Peer
  // re-entry replaces each one with a live next-best candidate.
  const QueryOutcome& out = second.value();
  ASSERT_GT(out.decision.peers.size(), 0u);
  EXPECT_EQ(out.execution.failed_peers, out.decision.peers.size());
  EXPECT_EQ(out.degradation.peers_failed, out.execution.failed_peers);
  EXPECT_EQ(out.degradation.peers_replaced, out.degradation.peers_failed);
  // One (empty) slot per failed peer plus one per replacement.
  EXPECT_EQ(out.execution.per_peer_results.size(),
            out.decision.peers.size() + out.degradation.peers_replaced);
  // Fully repaired: as many peers answered as the decision asked for,
  // so the result is not partial and still carries remote documents.
  EXPECT_FALSE(out.degradation.partial);
  EXPECT_FALSE(out.execution.all_distinct.empty());
  EXPECT_GT(out.recall, 0.0);
}

TEST(ChurnTest, GracefulLeaveKeepsDirectoryServable) {
  auto engine = MinervaEngine::Create(EngineOptions{}, Collections(8));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value()->PublishAll().ok());
  Query q = FrequentTermQuery(*engine.value());

  // Peer 5 leaves gracefully: its directory keys are handed to the
  // successor before it disconnects.
  ASSERT_TRUE(engine.value()->ring().node(5).Leave().ok());
  ASSERT_TRUE(engine.value()->ring().RunMaintenance(10).ok());

  IqnRouter router;
  auto outcome = engine.value()->RunQuery(0, q, router, 3);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  // The directory entries survived the departure via handoff.
  auto candidates = engine.value()->peer(0).FetchCandidates(q);
  ASSERT_TRUE(candidates.ok());
  EXPECT_GE(candidates.value().size(), 5u);
}

TEST(ChurnTest, RepublishAfterChurnRestoresFreshness) {
  auto engine = MinervaEngine::Create(EngineOptions{}, Collections(6));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value()->PublishAll().ok());
  Query q = FrequentTermQuery(*engine.value());

  ASSERT_TRUE(
      engine.value()->network().SetNodeUp(engine.value()->peer(3).address(),
                                          false)
          .ok());
  ASSERT_TRUE(engine.value()->ring().RunMaintenance(10).ok());
  // Remaining peers re-publish (periodic refresh in a real deployment).
  for (size_t i = 0; i < 6; ++i) {
    if (i == 3) continue;
    ASSERT_TRUE(engine.value()->peer(i).PublishPosts().ok());
  }
  IqnRouter router;
  auto outcome = engine.value()->RunQuery(0, q, router, 4);
  ASSERT_TRUE(outcome.ok());
  // The dead peer may still be listed (stale post) but live peers answer.
  EXPECT_GE(outcome.value().decision.peers.size(), 1u);
}

// Property test: a random mix of abrupt failures, graceful leaves, and
// joins, interleaved with maintenance, must always converge back to a
// ring where every live node agrees with ground-truth key ownership.
// The whole churn phase additionally runs under an injected FaultPlan
// (dropped messages on top of the dead nodes) with retries, so ring
// repair is exercised against a lossy network, not just clean failures.
TEST(ChurnTest, RandomChurnSequencePreservesLookupCorrectness) {
  SimulatedNetwork net;
  auto ring = ChordRing::Build(&net, 24);
  ASSERT_TRUE(ring.ok());
  Rng rng(2026);

  net.InstallFaultPlan(FaultPlan::MessageDrop(/*seed=*/515, /*rate=*/0.02));
  RetryPolicy retry;
  retry.max_attempts = 4;
  retry.jitter = 0.0;
  auto scope = std::make_unique<RpcScope>(retry);

  auto live_nodes = [&]() {
    std::vector<size_t> live;
    for (size_t i = 0; i < ring.value()->size(); ++i) {
      const ChordNode& node = ring.value()->node(i);
      if (node.in_ring() && net.IsNodeUp(node.address())) live.push_back(i);
    }
    return live;
  };

  for (int round = 0; round < 10; ++round) {
    std::vector<size_t> live = live_nodes();
    ASSERT_GT(live.size(), 4u);  // keep the ring meaningfully populated
    size_t victim = live[rng.Uniform(live.size())];
    switch (rng.Uniform(3)) {
      case 0:  // abrupt failure
        ASSERT_TRUE(net.SetNodeUp(ring.value()->node(victim).address(), false)
                        .ok());
        break;
      case 1:  // graceful leave
        ASSERT_TRUE(ring.value()->node(victim).Leave().ok());
        break;
      case 2: {  // a previously departed node rejoins
        for (size_t i = 0; i < ring.value()->size(); ++i) {
          ChordNode& node = ring.value()->node(i);
          if (!node.in_ring()) {
            std::vector<size_t> candidates = live_nodes();
            size_t bootstrap = candidates[rng.Uniform(candidates.size())];
            ASSERT_TRUE(
                node.Join(ring.value()->node(bootstrap).address()).ok());
            break;
          }
        }
        break;
      }
    }
    ASSERT_TRUE(ring.value()->RunMaintenance(12).ok());
  }
  // End the lossy phase: drop the retry scope and the plan, then settle
  // fingers fully and verify ownership agreement on a clean network —
  // transient drops during churn must not leave permanent damage.
  scope.reset();
  net.ClearFaults();
  ASSERT_TRUE(ring.value()->RunMaintenance(30).ok());
  ASSERT_TRUE(ring.value()->SettleFingers().ok());

  std::vector<size_t> live = live_nodes();
  auto true_owner = [&](RingId key) {
    NodeAddress best = kInvalidAddress;
    uint64_t best_distance = ~uint64_t{0};
    for (size_t i : live) {
      const ChordNode& node = ring.value()->node(i);
      uint64_t d = RingDistance(key, node.id());
      if (d <= best_distance) {
        best_distance = d;
        best = node.address();
      }
    }
    return best;
  };
  for (int k = 0; k < 50; ++k) {
    RingId key = RingIdForKey("churnkey" + std::to_string(k));
    size_t origin = live[static_cast<size_t>(k) % live.size()];
    auto found = ring.value()->node(origin).FindSuccessor(key);
    ASSERT_TRUE(found.ok()) << found.status().ToString();
    EXPECT_EQ(found.value().owner.address, true_owner(key)) << "key " << k;
  }
}

}  // namespace
}  // namespace iqn

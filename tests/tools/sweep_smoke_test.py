#!/usr/bin/env python3
"""ctest smoke for tools/sweep_scenarios.py.

Runs a tiny two-point grid (engine.max_peers = 2, 3) over
scenarios/chaos_baseline.json through the real run_scenario binary and
asserts the contract the benches rely on: exit status 0, an aggregate
JSON with the documented shape, one entry per grid point carrying the
override and the headline metrics, and per-point spec/result files on
disk next to the aggregate.

Usage: sweep_smoke_test.py SOURCE_DIR RUN_SCENARIO_BINARY
"""

import json
import os
import subprocess
import sys
import tempfile


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main(argv):
    if len(argv) != 3:
        fail(f"usage: {argv[0]} SOURCE_DIR RUN_SCENARIO_BINARY")
    source_dir, run_scenario = argv[1], argv[2]
    sweep = os.path.join(source_dir, "tools", "sweep_scenarios.py")
    base_spec = os.path.join(source_dir, "scenarios", "chaos_baseline.json")
    for path in (sweep, base_spec, run_scenario):
        if not os.path.exists(path):
            fail(f"missing input: {path}")

    with tempfile.TemporaryDirectory(prefix="iqn_sweep_smoke_") as outdir:
        aggregate_path = os.path.join(outdir, "aggregate.json")
        proc = subprocess.run(
            [sys.executable, sweep, base_spec,
             "--set", "engine.max_peers=2,3",
             "--run-scenario", run_scenario,
             "--outdir", outdir, "--aggregate", aggregate_path],
            capture_output=True, text=True)
        if proc.returncode != 0:
            fail(f"sweep exited {proc.returncode}\nstdout: {proc.stdout}\n"
                 f"stderr: {proc.stderr}")

        with open(aggregate_path, encoding="utf-8") as fh:
            aggregate = json.load(fh)
        for key in ("base_spec", "axes", "points", "failed"):
            if key not in aggregate:
                fail(f"aggregate is missing key '{key}'")
        if aggregate["failed"] != 0:
            fail(f"aggregate reports {aggregate['failed']} failed points")
        if aggregate["axes"] != [{"path": "engine.max_peers",
                                  "values": [2, 3]}]:
            fail(f"unexpected axes: {aggregate['axes']}")
        points = aggregate["points"]
        if len(points) != 2:
            fail(f"expected 2 grid points, got {len(points)}")
        for point, expected in zip(points, (2, 3)):
            if not point["ok"]:
                fail(f"point {point['name']} not ok: {point.get('error')}")
            if point["overrides"] != {"engine.max_peers": expected}:
                fail(f"unexpected overrides: {point['overrides']}")
            for key in ("queries_run", "mean_recall", "messages", "bytes",
                        "result_fingerprint"):
                if key not in point:
                    fail(f"point {point['name']} is missing metric '{key}'")
            for artifact in (point["spec"], point["result"]):
                if not os.path.exists(os.path.join(outdir, artifact)):
                    fail(f"missing per-point artifact: {artifact}")
        # Querying more peers must not reduce recall — sanity that the
        # overrides actually reached the engine.
        if points[1]["mean_recall"] < points[0]["mean_recall"]:
            fail("max_peers=3 recall below max_peers=2; override not applied?")

    print("sweep smoke OK: 2 points, aggregate shape verified")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""ctest driver for the profiling/diff telemetry pipeline.

Runs scenarios/chaos_baseline.json through the real run_scenario binary
twice with every sink enabled and asserts the contracts the telemetry
tooling relies on:
  * the Chrome trace validates (tools/validate_trace.py);
  * the folded-stack profile validates structurally AND matches an
    exact replay of the profiler's exclusive-time computation from the
    trace's sid/spid tree (--folded FOLDED TRACE);
  * folded output is bit-identical across same-seed reruns;
  * the result file is an iqn.bench_report.v1 document whose "sinks"
    section names the files actually written;
  * tools/bench_diff.py reports zero drift between the two runs.

Usage: folded_profile_test.py SOURCE_DIR RUN_SCENARIO_BINARY
"""

import json
import os
import subprocess
import sys
import tempfile


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def run(cmd):
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        fail(f"{' '.join(cmd)} exited {proc.returncode}\n"
             f"stdout: {proc.stdout}\nstderr: {proc.stderr}")
    return proc.stdout


def main(argv):
    if len(argv) != 3:
        fail(f"usage: {argv[0]} SOURCE_DIR RUN_SCENARIO_BINARY")
    source_dir, run_scenario = argv[1], argv[2]
    validate = os.path.join(source_dir, "tools", "validate_trace.py")
    bench_diff = os.path.join(source_dir, "tools", "bench_diff.py")
    spec = os.path.join(source_dir, "scenarios", "chaos_baseline.json")
    for path in (validate, bench_diff, spec, run_scenario):
        if not os.path.exists(path):
            fail(f"missing input: {path}")

    with tempfile.TemporaryDirectory(prefix="iqn_folded_profile_") as outdir:
        results = []
        for tag in ("a", "b"):
            trace = os.path.join(outdir, f"{tag}.trace.json")
            folded = os.path.join(outdir, f"{tag}.folded")
            metrics = os.path.join(outdir, f"{tag}.metrics.json")
            result = os.path.join(outdir, f"{tag}.result.json")
            run([run_scenario, spec, f"--trace_out={trace}",
                 f"--profile_out={folded}", f"--metrics_out={metrics}",
                 f"--out={result}"])
            for artifact in (trace, folded, metrics, result):
                if not os.path.exists(artifact):
                    fail(f"sink not written: {artifact}")
            run([sys.executable, validate, trace])
            run([sys.executable, validate, "--folded", folded, trace])
            results.append(result)

        with open(os.path.join(outdir, "a.folded"), encoding="utf-8") as fh:
            folded_a = fh.read()
        with open(os.path.join(outdir, "b.folded"), encoding="utf-8") as fh:
            folded_b = fh.read()
        if folded_a != folded_b:
            fail("folded profiles differ between same-seed reruns")

        with open(results[0], encoding="utf-8") as fh:
            report = json.load(fh)
        if report.get("schema") != "iqn.bench_report.v1":
            fail(f"result is not a bench report: {report.get('schema')!r}")
        sinks = report.get("sinks")
        if not isinstance(sinks, dict):
            fail('result lacks a "sinks" section')
        for key in ("trace_out", "profile_out", "metrics_out"):
            if key not in sinks or not os.path.exists(sinks[key]):
                fail(f'sinks["{key}"] missing or names an absent file')

        run([sys.executable, bench_diff, "--selftest"])
        run([sys.executable, bench_diff, results[0], results[1]])

    print("folded profile pipeline OK: sinks, exact refold, zero drift")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

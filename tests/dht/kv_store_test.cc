#include "dht/kv_store.h"

#include <gtest/gtest.h>

#include "net/network.h"

namespace iqn {
namespace {

Bytes Val(std::initializer_list<uint8_t> bytes) { return Bytes(bytes); }

struct Fixture {
  SimulatedNetwork net;
  std::unique_ptr<ChordRing> ring;
  std::vector<std::unique_ptr<DhtStore>> stores;

  explicit Fixture(size_t nodes, size_t replication = 1) {
    auto r = ChordRing::Build(&net, nodes);
    EXPECT_TRUE(r.ok());
    ring = std::move(r).value();
    for (size_t i = 0; i < nodes; ++i) {
      auto s = DhtStore::Attach(&ring->node(i), replication);
      EXPECT_TRUE(s.ok());
      stores.push_back(std::move(s).value());
    }
  }
};

TEST(DhtStoreTest, AttachValidates) {
  SimulatedNetwork net;
  ChordNode node(&net);
  EXPECT_FALSE(DhtStore::Attach(nullptr, 1).ok());
  EXPECT_FALSE(DhtStore::Attach(&node, 0).ok());
  EXPECT_FALSE(
      DhtStore::Attach(&node, ChordNode::kSuccessorListSize + 1).ok());
}

TEST(DhtStoreTest, UpsertThenGetAllFromAnyNode) {
  Fixture fx(8);
  ASSERT_TRUE(fx.stores[0]->Upsert("apple", "p1", Val({1})).ok());
  ASSERT_TRUE(fx.stores[3]->Upsert("apple", "p2", Val({2})).ok());
  for (size_t origin = 0; origin < 8; ++origin) {
    auto r = fx.stores[origin]->GetAll("apple");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().size(), 2u) << "origin=" << origin;
  }
}

TEST(DhtStoreTest, UpsertReplacesSameSubkey) {
  Fixture fx(4);
  ASSERT_TRUE(fx.stores[0]->Upsert("k", "peer7", Val({1})).ok());
  ASSERT_TRUE(fx.stores[1]->Upsert("k", "peer7", Val({9})).ok());
  auto r = fx.stores[2]->GetAll("k");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 1u);
  EXPECT_EQ(r.value()[0], Val({9}));
}

TEST(DhtStoreTest, MissingKeyYieldsEmptyList) {
  Fixture fx(4);
  auto r = fx.stores[0]->GetAll("nothing");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().empty());
}

TEST(DhtStoreTest, KeyIsStoredAtItsChordOwner) {
  Fixture fx(16);
  ASSERT_TRUE(fx.stores[0]->Upsert("banana", "p", Val({5})).ok());
  auto owner = fx.ring->Lookup(0, RingIdForKey("banana"));
  ASSERT_TRUE(owner.ok());
  size_t holders = 0;
  for (size_t i = 0; i < 16; ++i) {
    if (fx.stores[i]->LocalHasKey("banana")) {
      ++holders;
      EXPECT_EQ(fx.ring->node(i).address(), owner.value().owner.address);
    }
  }
  EXPECT_EQ(holders, 1u);  // replication = 1
}

TEST(DhtStoreTest, ReplicationPlacesCopiesOnSuccessors) {
  Fixture fx(16, /*replication=*/3);
  ASSERT_TRUE(fx.stores[0]->Upsert("cherry", "p", Val({6})).ok());
  size_t holders = 0;
  for (size_t i = 0; i < 16; ++i) {
    if (fx.stores[i]->LocalHasKey("cherry")) ++holders;
  }
  EXPECT_EQ(holders, 3u);
}

TEST(DhtStoreTest, RemoveSubkeyAndWholeKey) {
  Fixture fx(8);
  ASSERT_TRUE(fx.stores[0]->Upsert("d", "a", Val({1})).ok());
  ASSERT_TRUE(fx.stores[0]->Upsert("d", "b", Val({2})).ok());
  ASSERT_TRUE(fx.stores[1]->Remove("d", "a").ok());
  auto r = fx.stores[2]->GetAll("d");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 1u);
  ASSERT_TRUE(fx.stores[1]->Remove("d").ok());
  r = fx.stores[2]->GetAll("d");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().empty());
}

TEST(DhtStoreTest, OwnerFailureServedByReplicaAfterRepair) {
  Fixture fx(12, /*replication=*/3);
  ASSERT_TRUE(fx.stores[0]->Upsert("kiwi", "p", Val({7})).ok());
  // Find and kill the owner.
  auto owner = fx.ring->Lookup(0, RingIdForKey("kiwi"));
  ASSERT_TRUE(owner.ok());
  size_t owner_index = 0;
  for (size_t i = 0; i < 12; ++i) {
    if (fx.ring->node(i).address() == owner.value().owner.address) {
      owner_index = i;
    }
  }
  ASSERT_TRUE(fx.net.SetNodeUp(owner.value().owner.address, false).ok());
  ASSERT_TRUE(fx.ring->RunMaintenance(10).ok());
  // Any live node can still read the key (replica took over ownership).
  size_t origin = (owner_index + 1) % 12;
  auto r = fx.stores[origin]->GetAll("kiwi");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().size(), 1u);
  EXPECT_EQ(r.value()[0], Val({7}));
}

TEST(DhtStoreTest, GracefulLeaveHandsKeysToSuccessor) {
  Fixture fx(10);
  ASSERT_TRUE(fx.stores[0]->Upsert("mango", "p", Val({8})).ok());
  size_t owner_index = 99;
  for (size_t i = 0; i < 10; ++i) {
    if (fx.stores[i]->LocalHasKey("mango")) owner_index = i;
  }
  ASSERT_NE(owner_index, 99u);
  ASSERT_TRUE(fx.ring->node(owner_index).Leave().ok());
  ASSERT_TRUE(fx.ring->RunMaintenance(8).ok());
  size_t origin = (owner_index + 1) % 10;
  auto r = fx.stores[origin]->GetAll("mango");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 1u);
  EXPECT_EQ(r.value()[0], Val({8}));
}

TEST(DhtStoreTest, UpsertBatchStoresEverythingWithFewerMessages) {
  Fixture unbatched_fx(8);
  Fixture batched_fx(8);
  std::vector<DhtStore::Entry> entries;
  for (int i = 0; i < 60; ++i) {
    entries.push_back(
        DhtStore::Entry{"key" + std::to_string(i), "p", Val({1})});
  }

  unbatched_fx.net.ResetStats();
  for (const auto& e : entries) {
    ASSERT_TRUE(unbatched_fx.stores[0]->Upsert(e.key, e.subkey, e.value).ok());
  }
  uint64_t unbatched_messages = unbatched_fx.net.stats().messages;

  batched_fx.net.ResetStats();
  ASSERT_TRUE(batched_fx.stores[0]->UpsertBatch(entries).ok());
  uint64_t batched_messages = batched_fx.net.stats().messages;

  // Identical stored state...
  for (const auto& e : entries) {
    auto r = batched_fx.stores[3]->GetAll(e.key);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().size(), 1u) << e.key;
  }
  // ...at a lower message cost (at most one data message per owner plus
  // the lookups, vs one per key).
  EXPECT_LT(batched_messages, unbatched_messages);
}

TEST(DhtStoreTest, UpsertBatchReplicatesLikeSingleUpserts) {
  Fixture fx(12, /*replication=*/3);
  std::vector<DhtStore::Entry> entries = {
      {"alpha", "p", Val({1})}, {"beta", "p", Val({2})}};
  ASSERT_TRUE(fx.stores[0]->UpsertBatch(entries).ok());
  for (const auto& e : entries) {
    size_t holders = 0;
    for (size_t i = 0; i < 12; ++i) {
      if (fx.stores[i]->LocalHasKey(e.key)) ++holders;
    }
    EXPECT_EQ(holders, 3u) << e.key;
  }
}

TEST(DhtStoreTest, EmptyBatchIsNoop) {
  Fixture fx(4);
  EXPECT_TRUE(fx.stores[0]->UpsertBatch({}).ok());
}

TEST(DhtStoreTest, GetTopReturnsHighestScoredValues) {
  Fixture fx(8);
  // Scorer: first payload byte is the score.
  for (auto& store : fx.stores) {
    store->set_value_scorer([](const Bytes& v) {
      return v.empty() ? 0.0 : static_cast<double>(v[0]);
    });
  }
  for (uint8_t score : {3, 9, 1, 7, 5}) {
    ASSERT_TRUE(
        fx.stores[0]->Upsert("ranked", "sub" + std::to_string(score),
                             Val({score}))
            .ok());
  }
  auto top = fx.stores[2]->GetTop("ranked", 2);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top.value().size(), 2u);
  EXPECT_EQ(top.value()[0][0], 9);
  EXPECT_EQ(top.value()[1][0], 7);
}

TEST(DhtStoreTest, GetTopWithZeroLimitOrNoScorerReturnsAll) {
  Fixture fx(4);  // no scorer installed
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        fx.stores[0]->Upsert("k", "s" + std::to_string(i), Val({1})).ok());
  }
  auto all = fx.stores[1]->GetTop("k", 0);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().size(), 5u);
  auto unranked = fx.stores[1]->GetTop("k", 2);
  ASSERT_TRUE(unranked.ok());
  EXPECT_EQ(unranked.value().size(), 5u);  // no scorer -> everything
}

TEST(DhtStoreTest, GetTopOnMissingKeyIsEmpty) {
  Fixture fx(4);
  auto r = fx.stores[0]->GetTop("missing", 3);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().empty());
}

TEST(DhtStoreTest, ManyKeysDistributeAcrossNodes) {
  Fixture fx(16);
  for (int k = 0; k < 200; ++k) {
    ASSERT_TRUE(
        fx.stores[k % 16]->Upsert("key" + std::to_string(k), "p", Val({1}))
            .ok());
  }
  size_t nodes_with_data = 0;
  size_t total = 0;
  for (size_t i = 0; i < 16; ++i) {
    size_t local = fx.stores[i]->LocalKeyCount();
    total += local;
    if (local > 0) ++nodes_with_data;
  }
  EXPECT_EQ(total, 200u);
  EXPECT_GE(nodes_with_data, 12u);  // roughly uniform partitioning
}

}  // namespace
}  // namespace iqn

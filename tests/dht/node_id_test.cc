#include "dht/node_id.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace iqn {
namespace {

TEST(RingIdTest, NodeAndKeyHashingDeterministic) {
  EXPECT_EQ(RingIdForNode(5), RingIdForNode(5));
  EXPECT_NE(RingIdForNode(5), RingIdForNode(6));
  EXPECT_EQ(RingIdForKey("apple"), RingIdForKey("apple"));
  EXPECT_NE(RingIdForKey("apple"), RingIdForKey("apples"));
}

TEST(RingIdTest, NodeIdsWellDispersed) {
  std::unordered_set<RingId> ids;
  for (NodeAddress a = 0; a < 10000; ++a) ids.insert(RingIdForNode(a));
  EXPECT_EQ(ids.size(), 10000u);
}

TEST(RingDistanceTest, WrapsAroundCorrectly) {
  EXPECT_EQ(RingDistance(10, 15), 5u);
  EXPECT_EQ(RingDistance(15, 10), ~uint64_t{0} - 4);  // the long way round
  EXPECT_EQ(RingDistance(7, 7), 0u);
}

TEST(IntervalTest, OpenIntervalBasicCases) {
  EXPECT_TRUE(InOpenInterval(10, 15, 20));
  EXPECT_FALSE(InOpenInterval(10, 10, 20));  // endpoints excluded
  EXPECT_FALSE(InOpenInterval(10, 20, 20));
  EXPECT_FALSE(InOpenInterval(10, 25, 20));
}

TEST(IntervalTest, OpenIntervalWrapsZero) {
  RingId high = ~uint64_t{0} - 10;
  EXPECT_TRUE(InOpenInterval(high, 5, 10));       // crosses zero
  EXPECT_TRUE(InOpenInterval(high, high + 3, 10));
  EXPECT_FALSE(InOpenInterval(high, 15, 10));
}

TEST(IntervalTest, DegenerateOpenIntervalIsFullRingMinusPoint) {
  EXPECT_TRUE(InOpenInterval(7, 8, 7));
  EXPECT_TRUE(InOpenInterval(7, 0, 7));
  EXPECT_FALSE(InOpenInterval(7, 7, 7));
}

TEST(IntervalTest, OpenClosedIncludesUpperBound) {
  EXPECT_TRUE(InOpenClosedInterval(10, 20, 20));
  EXPECT_FALSE(InOpenClosedInterval(10, 10, 20));
  EXPECT_TRUE(InOpenClosedInterval(10, 15, 20));
}

TEST(IntervalTest, OpenClosedSingleNodeOwnsEverything) {
  EXPECT_TRUE(InOpenClosedInterval(7, 7, 7));
  EXPECT_TRUE(InOpenClosedInterval(7, 123456, 7));
}

TEST(IntervalTest, OpenClosedWrapsZero) {
  RingId high = ~uint64_t{0} - 2;
  EXPECT_TRUE(InOpenClosedInterval(high, 1, 3));
  EXPECT_TRUE(InOpenClosedInterval(high, 3, 3));
  EXPECT_FALSE(InOpenClosedInterval(high, 4, 3));
}

TEST(ChordPeerTest, ValidityAndEquality) {
  ChordPeer invalid;
  EXPECT_FALSE(invalid.valid());
  ChordPeer a{1, 2}, b{1, 2}, c{1, 3};
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a.ToString().empty());
}

}  // namespace
}  // namespace iqn

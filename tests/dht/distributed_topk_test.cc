#include "dht/distributed_topk.h"

#include <gtest/gtest.h>

#include "net/network.h"

#include <map>

#include "util/random.h"

namespace iqn {
namespace {

// Score = first payload byte (0..255).
double ByteScorer(const Bytes& v) {
  return v.empty() ? 0.0 : static_cast<double>(v[0]);
}

struct Fixture {
  SimulatedNetwork net;
  std::unique_ptr<ChordRing> ring;
  std::vector<std::unique_ptr<DhtStore>> stores;

  explicit Fixture(size_t nodes = 10) {
    auto r = ChordRing::Build(&net, nodes);
    EXPECT_TRUE(r.ok());
    ring = std::move(r).value();
    for (size_t i = 0; i < nodes; ++i) {
      auto s = DhtStore::Attach(&ring->node(i), 1);
      EXPECT_TRUE(s.ok());
      s.value()->set_value_scorer(ByteScorer);
      stores.push_back(std::move(s).value());
    }
  }

  void Put(const std::string& key, const std::string& subkey, uint8_t score) {
    ASSERT_TRUE(stores[0]->Upsert(key, subkey, Bytes{score}).ok());
  }
};

/// Brute-force ground truth over explicit (key -> subkey -> score) data.
std::vector<DhtStore::ScoredSubkey> BruteForceTopK(
    const std::map<std::string, std::map<std::string, double>>& data,
    size_t k) {
  std::map<std::string, double> totals;
  for (const auto& [key, entries] : data) {
    for (const auto& [subkey, score] : entries) totals[subkey] += score;
  }
  std::vector<DhtStore::ScoredSubkey> ranked;
  for (const auto& [subkey, total] : totals) {
    ranked.push_back(DhtStore::ScoredSubkey{subkey, total});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const DhtStore::ScoredSubkey& a,
               const DhtStore::ScoredSubkey& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.subkey < b.subkey;
            });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

TEST(DistributedTopKTest, Validates) {
  Fixture fx;
  EXPECT_FALSE(DistributedTopK(nullptr, {"a"}, 3).ok());
  EXPECT_FALSE(DistributedTopK(fx.stores[0].get(), {}, 3).ok());
  EXPECT_FALSE(DistributedTopK(fx.stores[0].get(), {"a"}, 0).ok());
}

TEST(DistributedTopKTest, SimpleTwoListCase) {
  Fixture fx;
  // totals: p1 = 10+1 = 11, p2 = 8+8 = 16, p3 = 0+9 = 9.
  fx.Put("ta", "p1", 10);
  fx.Put("ta", "p2", 8);
  fx.Put("tb", "p1", 1);
  fx.Put("tb", "p2", 8);
  fx.Put("tb", "p3", 9);
  auto result = DistributedTopK(fx.stores[3].get(), {"ta", "tb"}, 2);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().best.size(), 2u);
  EXPECT_EQ(result.value().best[0].subkey, "p2");
  EXPECT_DOUBLE_EQ(result.value().best[0].score, 16.0);
  EXPECT_EQ(result.value().best[1].subkey, "p1");
  EXPECT_DOUBLE_EQ(result.value().best[1].score, 11.0);
}

TEST(DistributedTopKTest, EmptyListsYieldEmptyResult) {
  Fixture fx;
  auto result = DistributedTopK(fx.stores[0].get(), {"none", "nada"}, 5);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().best.empty());
}

TEST(DistributedTopKTest, FewerSubkeysThanK) {
  Fixture fx;
  fx.Put("ta", "p1", 5);
  fx.Put("tb", "p2", 3);
  auto result = DistributedTopK(fx.stores[1].get(), {"ta", "tb"}, 10);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().best.size(), 2u);
  EXPECT_EQ(result.value().best[0].subkey, "p1");
}

TEST(DistributedTopKTest, WinnerInvisibleInPhaseOneIsStillFound) {
  // The classic TPUT stress case: a subkey that is never in any list's
  // local top-k but whose TOTAL wins. Lists have k=1 heads dominated by
  // one-hit wonders; "steady" scores medium everywhere.
  Fixture fx;
  for (int j = 0; j < 4; ++j) {
    std::string key = "t" + std::to_string(j);
    fx.Put(key, "flash" + std::to_string(j), 100);  // per-list champion
    fx.Put(key, "steady", 90);                      // always second
  }
  // totals: steady = 360; each flash = 100.
  auto result = DistributedTopK(fx.stores[2].get(),
                                {"t0", "t1", "t2", "t3"}, 1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().best.size(), 1u);
  EXPECT_EQ(result.value().best[0].subkey, "steady");
  EXPECT_DOUBLE_EQ(result.value().best[0].score, 360.0);
}

TEST(DistributedTopKTest, MatchesBruteForceOnRandomData) {
  // Property sweep: random (key, subkey, score) data, several k values;
  // the three-phase result must equal the centralized union ranking.
  Rng rng(99);
  for (int trial = 0; trial < 8; ++trial) {
    Fixture fx;
    std::map<std::string, std::map<std::string, double>> data;
    size_t num_keys = 2 + rng.Uniform(3);
    size_t num_subkeys = 10 + rng.Uniform(30);
    for (size_t j = 0; j < num_keys; ++j) {
      std::string key = "key" + std::to_string(j);
      for (size_t s = 0; s < num_subkeys; ++s) {
        if (rng.Bernoulli(0.6)) continue;  // sparse lists
        std::string subkey = "peer" + std::to_string(s);
        uint8_t score = static_cast<uint8_t>(1 + rng.Uniform(200));
        fx.Put(key, subkey, score);
        data[key][subkey] = score;
      }
    }
    std::vector<std::string> keys;
    for (const auto& [key, entries] : data) keys.push_back(key);
    if (keys.empty()) continue;
    for (size_t k : {1u, 3u, 8u}) {
      auto result = DistributedTopK(fx.stores[trial % 10].get(), keys, k);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      auto expected = BruteForceTopK(data, k);
      ASSERT_EQ(result.value().best.size(), expected.size())
          << "trial " << trial << " k " << k;
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_DOUBLE_EQ(result.value().best[i].score, expected[i].score)
            << "trial " << trial << " k " << k << " rank " << i;
      }
    }
  }
}

TEST(DistributedTopKTest, ShipsFewerEntriesThanFullLists) {
  Fixture fx;
  constexpr size_t kSubkeys = 200;
  for (size_t s = 0; s < kSubkeys; ++s) {
    std::string subkey = "p" + std::to_string(s);
    fx.Put("ta", subkey, static_cast<uint8_t>(1 + s % 200));
    fx.Put("tb", subkey, static_cast<uint8_t>(1 + (s * 7) % 200));
  }
  auto result = DistributedTopK(fx.stores[4].get(), {"ta", "tb"}, 5);
  ASSERT_TRUE(result.ok());
  size_t shipped = result.value().phase1_entries +
                   result.value().phase2_entries +
                   result.value().phase3_candidates;
  EXPECT_LT(shipped, 2 * kSubkeys);  // strictly better than full transfer
  EXPECT_EQ(result.value().best.size(), 5u);
}

}  // namespace
}  // namespace iqn

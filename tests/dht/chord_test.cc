#include "dht/chord.h"

#include <gtest/gtest.h>

#include "net/network.h"

#include <algorithm>
#include <vector>

namespace iqn {
namespace {

// Ground-truth owner: first live in-ring node clockwise from the key.
const ChordNode* TrueOwner(const std::vector<const ChordNode*>& nodes,
                           RingId key) {
  const ChordNode* best = nullptr;
  uint64_t best_distance = ~uint64_t{0};
  for (const ChordNode* n : nodes) {
    uint64_t d = RingDistance(key, n->id());
    if (d <= best_distance) {
      best_distance = d;
      best = n;
    }
  }
  return best;
}

TEST(ChordNodeTest, SingleNodeRingOwnsAllKeys) {
  SimulatedNetwork net;
  ChordNode node(&net);
  ASSERT_TRUE(node.CreateRing().ok());
  for (RingId key : {RingId{0}, RingId{12345}, ~RingId{0}}) {
    auto r = node.FindSuccessor(key);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().owner, node.self());
  }
}

TEST(ChordNodeTest, LookupBeforeJoiningFails) {
  SimulatedNetwork net;
  ChordNode node(&net);
  EXPECT_EQ(node.FindSuccessor(1).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ChordNodeTest, JoinThenStabilizeFormsTwoNodeRing) {
  SimulatedNetwork net;
  ChordNode a(&net), b(&net);
  ASSERT_TRUE(a.CreateRing().ok());
  ASSERT_TRUE(b.Join(a.address()).ok());
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(a.Stabilize().ok());
    ASSERT_TRUE(b.Stabilize().ok());
  }
  EXPECT_EQ(a.successor(), b.self());
  EXPECT_EQ(b.successor(), a.self());
  ASSERT_TRUE(a.predecessor().has_value());
  ASSERT_TRUE(b.predecessor().has_value());
  EXPECT_EQ(*a.predecessor(), b.self());
  EXPECT_EQ(*b.predecessor(), a.self());
}

TEST(ChordNodeTest, ProtocolJoinConvergesToCorrectOwnership) {
  SimulatedNetwork net;
  std::vector<std::unique_ptr<ChordNode>> nodes;
  nodes.push_back(std::make_unique<ChordNode>(&net));
  ASSERT_TRUE(nodes[0]->CreateRing().ok());
  for (int i = 1; i < 8; ++i) {
    nodes.push_back(std::make_unique<ChordNode>(&net));
    ASSERT_TRUE(nodes[i]->Join(nodes[0]->address()).ok());
    // A few stabilization rounds after each join.
    for (int round = 0; round < 3; ++round) {
      for (auto& n : nodes) {
        if (n->in_ring()) (void)n->Stabilize();
      }
    }
  }
  for (int round = 0; round < 8; ++round) {
    for (auto& n : nodes) {
      (void)n->Stabilize();
      (void)n->FixNextFinger();
    }
  }
  for (auto& n : nodes) ASSERT_TRUE(n->FixAllFingers().ok());

  std::vector<const ChordNode*> raw;
  for (auto& n : nodes) raw.push_back(n.get());
  for (RingId key = 0; key < 60; ++key) {
    RingId probe = RingIdForKey("key" + std::to_string(key));
    auto found = nodes[key % nodes.size()]->FindSuccessor(probe);
    ASSERT_TRUE(found.ok());
    EXPECT_EQ(found.value().owner.address, TrueOwner(raw, probe)->address());
  }
}

TEST(ChordRingTest, BuildProducesConsistentRing) {
  SimulatedNetwork net;
  auto ring = ChordRing::Build(&net, 32);
  ASSERT_TRUE(ring.ok());
  // Successor/predecessor pointers form one cycle covering all nodes.
  std::vector<const ChordNode*> raw;
  for (size_t i = 0; i < ring.value()->size(); ++i) {
    raw.push_back(&ring.value()->node(i));
  }
  const ChordNode* start = raw[0];
  ChordPeer current = start->successor();
  size_t steps = 1;
  while (!(current == start->self()) && steps <= raw.size()) {
    auto it = std::find_if(raw.begin(), raw.end(), [&](const ChordNode* n) {
      return n->self() == current;
    });
    ASSERT_NE(it, raw.end());
    current = (*it)->successor();
    ++steps;
  }
  EXPECT_EQ(steps, raw.size());
}

TEST(ChordRingTest, LookupsFindTrueOwnerFromEveryOrigin) {
  SimulatedNetwork net;
  auto ring = ChordRing::Build(&net, 50);
  ASSERT_TRUE(ring.ok());
  std::vector<const ChordNode*> raw;
  for (size_t i = 0; i < 50; ++i) raw.push_back(&ring.value()->node(i));
  for (int k = 0; k < 100; ++k) {
    RingId key = RingIdForKey("term" + std::to_string(k));
    auto found = ring.value()->Lookup(k % 50, key);
    ASSERT_TRUE(found.ok());
    EXPECT_EQ(found.value().owner.address, TrueOwner(raw, key)->address());
  }
}

TEST(ChordRingTest, LookupHopsAreLogarithmic) {
  SimulatedNetwork net;
  auto ring = ChordRing::Build(&net, 256);
  ASSERT_TRUE(ring.ok());
  double total_hops = 0;
  constexpr int kLookups = 200;
  for (int k = 0; k < kLookups; ++k) {
    auto found =
        ring.value()->Lookup(k % 256, RingIdForKey("k" + std::to_string(k)));
    ASSERT_TRUE(found.ok());
    total_hops += found.value().hops;
  }
  // log2(256) = 8; expect average halved (~4) and certainly far below
  // linear scanning.
  double avg = total_hops / kLookups;
  EXPECT_LT(avg, 12.0);
  EXPECT_GT(avg, 1.0);
}

TEST(ChordRingTest, GracefulLeaveSplicesRing) {
  SimulatedNetwork net;
  auto ring = ChordRing::Build(&net, 8);
  ASSERT_TRUE(ring.ok());
  ChordNode& leaver = ring.value()->node(3);
  ChordPeer leaver_self = leaver.self();
  ASSERT_TRUE(leaver.Leave().ok());
  ASSERT_TRUE(ring.value()->RunMaintenance(6).ok());
  // No remaining node routes to the departed one.
  for (int k = 0; k < 40; ++k) {
    size_t origin = k % 8;
    if (origin == 3) continue;
    auto found = ring.value()->Lookup(origin, RingIdForKey(std::to_string(k)));
    ASSERT_TRUE(found.ok());
    EXPECT_FALSE(found.value().owner == leaver_self);
  }
}

TEST(ChordRingTest, AbruptFailureRepairedByStabilization) {
  SimulatedNetwork net;
  auto ring = ChordRing::Build(&net, 16);
  ASSERT_TRUE(ring.ok());
  NodeAddress dead = ring.value()->node(5).address();
  ASSERT_TRUE(net.SetNodeUp(dead, false).ok());
  ASSERT_TRUE(ring.value()->RunMaintenance(10).ok());
  for (int k = 0; k < 40; ++k) {
    size_t origin = k % 16;
    if (origin == 5) continue;
    auto found = ring.value()->Lookup(origin, RingIdForKey(std::to_string(k)));
    ASSERT_TRUE(found.ok()) << found.status().ToString();
    EXPECT_NE(found.value().owner.address, dead);
  }
}

TEST(ChordRingTest, VerbRegistrationAndDispatch) {
  SimulatedNetwork net;
  auto ring = ChordRing::Build(&net, 4);
  ASSERT_TRUE(ring.ok());
  ChordNode& node = ring.value()->node(0);
  ASSERT_TRUE(node.RegisterVerb("app.hello",
                                [](const Message&) -> Result<Bytes> {
                                  return Bytes{42};
                                })
                  .ok());
  // chord.* names and duplicates are rejected.
  EXPECT_FALSE(node.RegisterVerb("chord.evil", nullptr).ok());
  EXPECT_FALSE(node.RegisterVerb("app.hello",
                                 [](const Message&) -> Result<Bytes> {
                                   return Bytes{};
                                 })
                   .ok());
  auto r = net.Rpc(1, node.address(), "app.hello", {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), Bytes{42});
  // Unknown verbs 404.
  EXPECT_EQ(net.Rpc(1, node.address(), "app.nope", {}).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace iqn

#include "workload/overlap_sets.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "synopses/estimators.h"

namespace iqn {
namespace {

TEST(OverlapSetsTest, ExactSharedCount) {
  Rng rng(1);
  auto pair = MakeSetsWithOverlap(1000, 800, 300, &rng);
  ASSERT_TRUE(pair.ok());
  EXPECT_EQ(pair.value().a.size(), 1000u);
  EXPECT_EQ(pair.value().b.size(), 800u);
  EXPECT_EQ(ExactOverlap(pair.value().a, pair.value().b), 300u);
}

TEST(OverlapSetsTest, ZeroAndFullOverlap) {
  Rng rng(2);
  auto disjoint = MakeSetsWithOverlap(100, 100, 0, &rng);
  ASSERT_TRUE(disjoint.ok());
  EXPECT_EQ(ExactOverlap(disjoint.value().a, disjoint.value().b), 0u);

  auto nested = MakeSetsWithOverlap(100, 100, 100, &rng);
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(ExactOverlap(nested.value().a, nested.value().b), 100u);
}

TEST(OverlapSetsTest, Validates) {
  Rng rng(3);
  EXPECT_FALSE(MakeSetsWithOverlap(10, 10, 11, &rng).ok());
  EXPECT_FALSE(MakeSetsWithOverlap(10, 10, 5, nullptr).ok());
}

TEST(SharedCountTest, MatchesResemblanceAlgebra) {
  // m = 2 n r / (1 + r): r = 1/3, n = 5000 -> m = 2500.
  EXPECT_EQ(SharedCountForResemblance(5000, 1.0 / 3.0), 2500u);
  EXPECT_EQ(SharedCountForResemblance(5000, 1.0), 5000u);
  EXPECT_EQ(SharedCountForResemblance(5000, 0.0), 0u);
  // r = 1/2 -> m = 2n/3.
  EXPECT_EQ(SharedCountForResemblance(300, 0.5), 200u);
}

TEST(OverlapSetsTest, ResemblanceTargetsAreHit) {
  Rng rng(4);
  for (double r : {0.5, 1.0 / 3.0, 0.25, 0.2, 1.0 / 9.0}) {
    auto pair = MakeSetsWithResemblance(3000, r, &rng);
    ASSERT_TRUE(pair.ok());
    double actual = ExactResemblance(pair.value().a, pair.value().b);
    EXPECT_NEAR(actual, r, 0.002) << "target r=" << r;
  }
}

TEST(OverlapSetsTest, ResemblanceValidatesRange) {
  Rng rng(5);
  EXPECT_FALSE(MakeSetsWithResemblance(100, -0.1, &rng).ok());
  EXPECT_FALSE(MakeSetsWithResemblance(100, 1.1, &rng).ok());
}

TEST(OverlapSetsTest, AllElementsDistinct64BitIds) {
  Rng rng(6);
  auto pair = MakeSetsWithOverlap(500, 500, 100, &rng);
  ASSERT_TRUE(pair.ok());
  // Union size = 500 + 500 - 100.
  std::vector<DocId> all = pair.value().a;
  all.insert(all.end(), pair.value().b.begin(), pair.value().b.end());
  std::unordered_set<DocId> distinct(all.begin(), all.end());
  EXPECT_EQ(distinct.size(), 900u);
}

}  // namespace
}  // namespace iqn

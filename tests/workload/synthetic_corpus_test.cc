#include "workload/synthetic_corpus.h"

#include <gtest/gtest.h>

#include <map>
#include <unordered_set>

namespace iqn {
namespace {

SyntheticCorpusOptions SmallOptions() {
  SyntheticCorpusOptions opts;
  opts.num_documents = 500;
  opts.vocabulary_size = 1000;
  opts.min_document_length = 20;
  opts.max_document_length = 60;
  opts.seed = 11;
  return opts;
}

TEST(SyntheticWordTest, DistinctAndLowercase) {
  std::unordered_set<std::string> words;
  for (size_t rank = 0; rank < 5000; ++rank) {
    std::string w = SyntheticWord(rank, 1);
    EXPECT_FALSE(w.empty());
    for (char c : w) EXPECT_TRUE(c >= 'a' && c <= 'z');
    EXPECT_TRUE(words.insert(w).second) << "duplicate at rank " << rank;
  }
}

TEST(SyntheticCorpusTest, CreateValidates) {
  SyntheticCorpusOptions bad = SmallOptions();
  bad.num_documents = 0;
  EXPECT_FALSE(SyntheticCorpusGenerator::Create(bad).ok());
  bad = SmallOptions();
  bad.vocabulary_size = 0;
  EXPECT_FALSE(SyntheticCorpusGenerator::Create(bad).ok());
  bad = SmallOptions();
  bad.min_document_length = 50;
  bad.max_document_length = 20;
  EXPECT_FALSE(SyntheticCorpusGenerator::Create(bad).ok());
}

TEST(SyntheticCorpusTest, GeneratesRequestedShape) {
  auto gen = SyntheticCorpusGenerator::Create(SmallOptions());
  ASSERT_TRUE(gen.ok());
  Corpus corpus = gen.value().Generate();
  EXPECT_EQ(corpus.size(), 500u);
  for (size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_GE(corpus.doc(i).terms.size(), 20u);
    EXPECT_LE(corpus.doc(i).terms.size(), 60u);
    EXPECT_EQ(corpus.doc(i).id, 1u + i);  // consecutive from first_doc_id
  }
}

TEST(SyntheticCorpusTest, DeterministicForSeed) {
  auto g1 = SyntheticCorpusGenerator::Create(SmallOptions());
  auto g2 = SyntheticCorpusGenerator::Create(SmallOptions());
  ASSERT_TRUE(g1.ok() && g2.ok());
  Corpus c1 = g1.value().Generate();
  Corpus c2 = g2.value().Generate();
  ASSERT_EQ(c1.size(), c2.size());
  for (size_t i = 0; i < c1.size(); ++i) {
    EXPECT_EQ(c1.doc(i).terms, c2.doc(i).terms);
  }
}

TEST(SyntheticCorpusTest, DifferentSeedsDiffer) {
  auto opts2 = SmallOptions();
  opts2.seed = 12;
  auto g1 = SyntheticCorpusGenerator::Create(SmallOptions());
  auto g2 = SyntheticCorpusGenerator::Create(opts2);
  ASSERT_TRUE(g1.ok() && g2.ok());
  EXPECT_NE(g1.value().Generate().doc(0).terms,
            g2.value().Generate().doc(0).terms);
}

TEST(SyntheticCorpusTest, TermFrequenciesAreZipfSkewed) {
  auto gen = SyntheticCorpusGenerator::Create(SmallOptions());
  ASSERT_TRUE(gen.ok());
  Corpus corpus = gen.value().Generate();
  std::map<std::string, size_t> freq;
  for (const auto& d : corpus.docs()) {
    for (const auto& t : d.terms) ++freq[t];
  }
  const auto& vocab = gen.value().vocabulary();
  // Rank-0 term should be far more frequent than a mid-tail term.
  size_t top = freq[vocab[0]];
  size_t mid = freq.count(vocab[500]) ? freq[vocab[500]] : 0;
  EXPECT_GT(top, 20 * (mid + 1));
}

TEST(SyntheticCorpusTest, VocabularySeedDecouplesWordsFromSampling) {
  // Same vocabulary_seed + different sampling seed = same words,
  // different documents — the incremental-crawl configuration.
  auto base = SmallOptions();
  auto delta = SmallOptions();
  delta.seed = base.seed + 99;
  delta.vocabulary_seed = base.seed;
  delta.first_doc_id = 10000;
  auto g1 = SyntheticCorpusGenerator::Create(base);
  auto g2 = SyntheticCorpusGenerator::Create(delta);
  ASSERT_TRUE(g1.ok() && g2.ok());
  EXPECT_EQ(g1.value().vocabulary(), g2.value().vocabulary());
  EXPECT_NE(g1.value().Generate().doc(0).terms,
            g2.value().Generate().doc(0).terms);
}

TEST(SyntheticCorpusTest, FirstDocIdOffsetRespected) {
  auto opts = SmallOptions();
  opts.first_doc_id = 1000;
  opts.num_documents = 10;
  auto gen = SyntheticCorpusGenerator::Create(opts);
  ASSERT_TRUE(gen.ok());
  Corpus corpus = gen.value().Generate();
  EXPECT_EQ(corpus.doc(0).id, 1000u);
  EXPECT_EQ(corpus.doc(9).id, 1009u);
}

}  // namespace
}  // namespace iqn

#include "workload/fragments.h"

#include <gtest/gtest.h>

namespace iqn {
namespace {

Corpus MakeCorpus(size_t n) {
  Corpus corpus;
  for (DocId id = 1; id <= n; ++id) {
    EXPECT_TRUE(corpus.AddDocumentTerms(id, {"t" + std::to_string(id % 7)}).ok());
  }
  return corpus;
}

TEST(SplitTest, FragmentsAreDisjointAndCoverCorpus) {
  Corpus corpus = MakeCorpus(103);
  auto frags = SplitIntoFragments(corpus, 10);
  ASSERT_TRUE(frags.ok());
  ASSERT_EQ(frags.value().size(), 10u);
  size_t total = 0;
  for (size_t i = 0; i < 10; ++i) {
    total += frags.value()[i].size();
    for (size_t j = i + 1; j < 10; ++j) {
      EXPECT_EQ(CollectionOverlap(frags.value()[i], frags.value()[j]), 0u);
    }
  }
  EXPECT_EQ(total, 103u);
  // Near-equal sizes: 103 = 10*10 + 3.
  for (const auto& f : frags.value()) {
    EXPECT_GE(f.size(), 10u);
    EXPECT_LE(f.size(), 11u);
  }
}

TEST(SplitTest, Validates) {
  Corpus corpus = MakeCorpus(5);
  EXPECT_FALSE(SplitIntoFragments(corpus, 0).ok());
  EXPECT_FALSE(SplitIntoFragments(corpus, 6).ok());
  EXPECT_TRUE(SplitIntoFragments(corpus, 5).ok());
}

TEST(CombinationsTest, CountAndOrder) {
  auto combos = Combinations(6, 3);
  EXPECT_EQ(combos.size(), 20u);  // (6 choose 3) — the paper's 20 peers
  EXPECT_EQ(combos.front(), (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(combos.back(), (std::vector<size_t>{3, 4, 5}));
  // All distinct.
  for (size_t i = 0; i < combos.size(); ++i) {
    for (size_t j = i + 1; j < combos.size(); ++j) {
      EXPECT_NE(combos[i], combos[j]);
    }
  }
}

TEST(CombinationsTest, EdgeCases) {
  EXPECT_EQ(Combinations(4, 4).size(), 1u);
  EXPECT_EQ(Combinations(4, 1).size(), 4u);
  EXPECT_TRUE(Combinations(3, 5).empty());
}

TEST(ChooseCombinationTest, PaperSetupProduces20Collections) {
  Corpus corpus = MakeCorpus(60);
  auto frags = SplitIntoFragments(corpus, 6);
  ASSERT_TRUE(frags.ok());
  auto collections = ChooseCombinationCollections(frags.value(), 3);
  ASSERT_TRUE(collections.ok());
  EXPECT_EQ(collections.value().size(), 20u);
  // Every collection holds 3 fragments x 10 docs.
  for (const auto& c : collections.value()) EXPECT_EQ(c.size(), 30u);
  // Two collections sharing 2 of 3 fragments overlap in 20 docs.
  // Collections 0 = {0,1,2} and 1 = {0,1,3}.
  EXPECT_EQ(CollectionOverlap(collections.value()[0], collections.value()[1]),
            20u);
  // {0,1,2} vs {3,4,5} (the last) are disjoint.
  EXPECT_EQ(CollectionOverlap(collections.value()[0],
                              collections.value()[19]),
            0u);
}

TEST(ChooseCombinationTest, UnionCoversEverything) {
  Corpus corpus = MakeCorpus(60);
  auto frags = SplitIntoFragments(corpus, 6);
  ASSERT_TRUE(frags.ok());
  auto collections = ChooseCombinationCollections(frags.value(), 3);
  ASSERT_TRUE(collections.ok());
  Corpus all;
  for (const auto& c : collections.value()) all.Merge(c);
  EXPECT_EQ(all.size(), 60u);
}

TEST(SlidingWindowTest, PaperSetupOverlapStructure) {
  Corpus corpus = MakeCorpus(200);
  auto frags = SplitIntoFragments(corpus, 100);
  ASSERT_TRUE(frags.ok());
  auto collections =
      SlidingWindowCollections(frags.value(), /*window=*/10, /*offset=*/2,
                               /*num_peers=*/50);
  ASSERT_TRUE(collections.ok());
  ASSERT_EQ(collections.value().size(), 50u);
  // Each peer holds 10 fragments x 2 docs = 20 docs.
  for (const auto& c : collections.value()) EXPECT_EQ(c.size(), 20u);
  // Adjacent peers share window - offset = 8 fragments = 16 docs.
  EXPECT_EQ(CollectionOverlap(collections.value()[0], collections.value()[1]),
            16u);
  // Peers 5 windows apart share nothing (offset 2 * 5 = 10 >= window).
  EXPECT_EQ(CollectionOverlap(collections.value()[0], collections.value()[5]),
            0u);
  // Wrap-around: the last peer (offset 98) shares fragments 98, 99 + wraps
  // into 0..7, overlapping peer 0 in 8 fragments.
  EXPECT_EQ(CollectionOverlap(collections.value()[49], collections.value()[0]),
            16u);
}

TEST(SlidingWindowTest, Validates) {
  Corpus corpus = MakeCorpus(20);
  auto frags = SplitIntoFragments(corpus, 10);
  ASSERT_TRUE(frags.ok());
  EXPECT_FALSE(SlidingWindowCollections(frags.value(), 0, 1, 5).ok());
  EXPECT_FALSE(SlidingWindowCollections(frags.value(), 11, 1, 5).ok());
  EXPECT_FALSE(SlidingWindowCollections(frags.value(), 5, 0, 5).ok());
  EXPECT_FALSE(SlidingWindowCollections(frags.value(), 5, 1, 0).ok());
}

TEST(CollectionOverlapTest, CountsSharedDocIds) {
  Corpus a, b;
  ASSERT_TRUE(a.AddDocumentTerms(1, {"x1"}).ok());
  ASSERT_TRUE(a.AddDocumentTerms(2, {"x2"}).ok());
  ASSERT_TRUE(b.AddDocumentTerms(2, {"x2"}).ok());
  ASSERT_TRUE(b.AddDocumentTerms(3, {"x3"}).ok());
  EXPECT_EQ(CollectionOverlap(a, b), 1u);
  EXPECT_EQ(CollectionOverlap(b, a), 1u);
}

}  // namespace
}  // namespace iqn

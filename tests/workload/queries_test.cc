#include "workload/queries.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "workload/synthetic_corpus.h"

namespace iqn {
namespace {

std::vector<std::string> Vocab(size_t n) {
  std::vector<std::string> v;
  for (size_t rank = 0; rank < n; ++rank) v.push_back(SyntheticWord(rank, 3));
  return v;
}

TEST(QueryWorkloadTest, GeneratesRequestedQueries) {
  QueryWorkloadOptions opts;
  opts.num_queries = 10;
  opts.min_terms = 2;
  opts.max_terms = 3;
  auto queries = GenerateQueries(Vocab(5000), opts);
  ASSERT_TRUE(queries.ok());
  ASSERT_EQ(queries.value().size(), 10u);
  for (const Query& q : queries.value()) {
    EXPECT_GE(q.terms.size(), 2u);
    EXPECT_LE(q.terms.size(), 3u);
    EXPECT_EQ(q.k, opts.k);
    EXPECT_EQ(q.mode, QueryMode::kDisjunctive);
    std::unordered_set<std::string> distinct(q.terms.begin(), q.terms.end());
    EXPECT_EQ(distinct.size(), q.terms.size());  // no repeated terms
  }
}

TEST(QueryWorkloadTest, TermsComeFromConfiguredBand) {
  auto vocab = Vocab(1000);
  QueryWorkloadOptions opts;
  opts.num_queries = 20;
  opts.band_low = 0.1;
  opts.band_high = 0.2;
  auto queries = GenerateQueries(vocab, opts);
  ASSERT_TRUE(queries.ok());
  std::unordered_set<std::string> band(vocab.begin() + 100,
                                       vocab.begin() + 200);
  for (const Query& q : queries.value()) {
    for (const auto& t : q.terms) EXPECT_TRUE(band.count(t)) << t;
  }
}

TEST(QueryWorkloadTest, DeterministicForSeed) {
  auto vocab = Vocab(2000);
  QueryWorkloadOptions opts;
  auto q1 = GenerateQueries(vocab, opts);
  auto q2 = GenerateQueries(vocab, opts);
  ASSERT_TRUE(q1.ok() && q2.ok());
  for (size_t i = 0; i < q1.value().size(); ++i) {
    EXPECT_EQ(q1.value()[i].terms, q2.value()[i].terms);
  }
  opts.seed = 99;
  auto q3 = GenerateQueries(vocab, opts);
  ASSERT_TRUE(q3.ok());
  EXPECT_NE(q1.value()[0].terms, q3.value()[0].terms);
}

TEST(QueryWorkloadTest, ConjunctiveModePropagates) {
  QueryWorkloadOptions opts;
  opts.mode = QueryMode::kConjunctive;
  auto queries = GenerateQueries(Vocab(1000), opts);
  ASSERT_TRUE(queries.ok());
  EXPECT_EQ(queries.value()[0].mode, QueryMode::kConjunctive);
}

TEST(QueryWorkloadTest, Validates) {
  auto vocab = Vocab(100);
  QueryWorkloadOptions opts;
  opts.min_terms = 0;
  EXPECT_FALSE(GenerateQueries(vocab, opts).ok());
  opts = {};
  opts.min_terms = 5;
  opts.max_terms = 2;
  EXPECT_FALSE(GenerateQueries(vocab, opts).ok());
  opts = {};
  opts.band_low = 0.5;
  opts.band_high = 0.5;
  EXPECT_FALSE(GenerateQueries(vocab, opts).ok());
  EXPECT_FALSE(GenerateQueries({}, QueryWorkloadOptions{}).ok());
}

TEST(QueryWorkloadTest, NarrowBandStillWorksIfItFitsAQuery) {
  auto vocab = Vocab(1000);
  QueryWorkloadOptions opts;
  opts.band_low = 0.010;
  opts.band_high = 0.015;  // 5 ranks; queries need <= 3 terms
  auto queries = GenerateQueries(vocab, opts);
  EXPECT_TRUE(queries.ok());
}

}  // namespace
}  // namespace iqn

#include "util/logging.h"

#include <gtest/gtest.h>

namespace iqn {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, MacrosCompileAndStreamMixedTypes) {
  LogLevel original = GetLogLevel();
  // Suppress actual output while exercising the stream path.
  SetLogLevel(LogLevel::kError);
  IQN_LOG_DEBUG << "value " << 42 << " ratio " << 0.5 << " flag " << true;
  IQN_LOG_INFO << "info line";
  IQN_LOG_WARN << "warn line";
  SetLogLevel(original);
}

// An operand that counts how often it is actually formatted.
struct CountingOperand {
  int* formats;
};
std::ostream& operator<<(std::ostream& os, const CountingOperand& c) {
  ++*c.formats;
  return os << "counted";
}

TEST(LoggingTest, SuppressedLineSkipsFormatting) {
  LogLevel original = GetLogLevel();
  int formats = 0;
  // The enabled decision is captured at construction; a suppressed line
  // must not format its operands (the pre-fix LogLine built the whole
  // message string before the level check could drop it).
  SetLogLevel(LogLevel::kError);
  { internal::LogLine(LogLevel::kDebug) << CountingOperand{&formats}; }
  EXPECT_EQ(formats, 0) << "suppressed log line formatted its operand";
  SetLogLevel(original);
}

TEST(LoggingTest, VerbosityRoundTrip) {
  int original = GetVerbosity();
  SetVerbosity(2);
  EXPECT_EQ(GetVerbosity(), 2);
  SetVerbosity(0);
  EXPECT_EQ(GetVerbosity(), 0);
  SetVerbosity(original);
}

TEST(LoggingTest, VlogSkipsEvaluatingOperandsWhenSuppressed) {
  int original = GetVerbosity();
  SetVerbosity(0);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return std::string("formatted");
  };
  IQN_VLOG(1) << expensive();
  EXPECT_EQ(evaluations, 0) << "IQN_VLOG evaluated its operand while off";
  SetVerbosity(2);
  // Enabled VLOG evaluates operands exactly once (bypassing the level
  // threshold by design: verbosity is an explicit opt-in).
  LogLevel level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  IQN_VLOG(1) << expensive();
  EXPECT_EQ(evaluations, 1);
  SetLogLevel(level);
  SetVerbosity(original);
}

TEST(LoggingTest, VlogComposesWithElse) {
  // The macro must not swallow a dangling else.
  int original = GetVerbosity();
  SetVerbosity(0);
  bool reached_else = false;
  if (false)
    IQN_VLOG(1) << "never";
  else
    reached_else = true;
  EXPECT_TRUE(reached_else);
  SetVerbosity(original);
}

TEST(LoggingTest, LevelOrderingIsMonotone) {
  EXPECT_LT(static_cast<int>(LogLevel::kDebug),
            static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo),
            static_cast<int>(LogLevel::kWarn));
  EXPECT_LT(static_cast<int>(LogLevel::kWarn),
            static_cast<int>(LogLevel::kError));
}

}  // namespace
}  // namespace iqn

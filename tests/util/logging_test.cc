#include "util/logging.h"

#include <gtest/gtest.h>

namespace iqn {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, MacrosCompileAndStreamMixedTypes) {
  LogLevel original = GetLogLevel();
  // Suppress actual output while exercising the stream path.
  SetLogLevel(LogLevel::kError);
  IQN_LOG_DEBUG << "value " << 42 << " ratio " << 0.5 << " flag " << true;
  IQN_LOG_INFO << "info line";
  IQN_LOG_WARN << "warn line";
  SetLogLevel(original);
}

TEST(LoggingTest, LevelOrderingIsMonotone) {
  EXPECT_LT(static_cast<int>(LogLevel::kDebug),
            static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo),
            static_cast<int>(LogLevel::kWarn));
  EXPECT_LT(static_cast<int>(LogLevel::kWarn),
            static_cast<int>(LogLevel::kError));
}

}  // namespace
}  // namespace iqn

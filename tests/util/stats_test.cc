#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace iqn {
namespace {

TEST(RunningStatsTest, EmptyIsAllZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.Min(), 0.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 0.0);
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats stats;
  stats.Add(3.5);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.Mean(), 3.5);
  EXPECT_DOUBLE_EQ(stats.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.Min(), 3.5);
  EXPECT_DOUBLE_EQ(stats.Max(), 3.5);
}

TEST(RunningStatsTest, KnownMeanAndVariance) {
  // {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, sample variance 32/7.
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(x);
  EXPECT_DOUBLE_EQ(stats.Mean(), 5.0);
  EXPECT_NEAR(stats.Variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stats.StdDev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(stats.Min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 9.0);
}

TEST(RunningStatsTest, NumericallyStableForLargeOffsets) {
  // Naive sum-of-squares would lose precision at this offset.
  RunningStats stats;
  constexpr double kOffset = 1e9;
  for (double x : {kOffset + 1, kOffset + 2, kOffset + 3}) stats.Add(x);
  EXPECT_NEAR(stats.Mean(), kOffset + 2, 1e-6);
  EXPECT_NEAR(stats.Variance(), 1.0, 1e-6);
}

TEST(RunningStatsTest, PercentileInterpolates) {
  RunningStats stats(/*keep_samples=*/true);
  for (double x : {10.0, 20.0, 30.0, 40.0, 50.0}) stats.Add(x);
  EXPECT_DOUBLE_EQ(stats.Percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(0.25), 20.0);
  // Out-of-range p clamps.
  EXPECT_DOUBLE_EQ(stats.Percentile(2.0), 50.0);
}

TEST(RunningStatsTest, PercentileRequiresRetention) {
  RunningStats stats;  // keep_samples = false
  stats.Add(1.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(0.5), 0.0);
}

}  // namespace
}  // namespace iqn

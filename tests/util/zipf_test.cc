#include "util/zipf.h"

#include <gtest/gtest.h>

#include <vector>

namespace iqn {
namespace {

TEST(ZipfSamplerTest, PmfSumsToOne) {
  ZipfSampler zipf(100, 1.0);
  double sum = 0.0;
  for (size_t k = 0; k < zipf.n(); ++k) sum += zipf.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, RankZeroIsMostProbable) {
  ZipfSampler zipf(1000, 1.0);
  EXPECT_GT(zipf.Pmf(0), zipf.Pmf(1));
  EXPECT_GT(zipf.Pmf(1), zipf.Pmf(10));
  EXPECT_GT(zipf.Pmf(10), zipf.Pmf(999));
}

TEST(ZipfSamplerTest, ThetaZeroIsUniform) {
  ZipfSampler zipf(50, 0.0);
  for (size_t k = 0; k < 50; ++k) EXPECT_NEAR(zipf.Pmf(k), 1.0 / 50, 1e-9);
}

TEST(ZipfSamplerTest, EmpiricalFrequenciesMatchPmf) {
  ZipfSampler zipf(20, 1.2);
  Rng rng(42);
  std::vector<int> counts(20, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Sample(&rng)];
  for (size_t k = 0; k < 5; ++k) {
    double expected = zipf.Pmf(k) * kDraws;
    EXPECT_NEAR(counts[k], expected, expected * 0.05 + 30);
  }
}

TEST(ZipfSamplerTest, SamplesWithinRange) {
  ZipfSampler zipf(7, 2.0);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(&rng), 7u);
}

TEST(AliasSamplerTest, MatchesWeights) {
  std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  AliasSampler alias(weights);
  Rng rng(5);
  std::vector<int> counts(4, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[alias.Sample(&rng)];
  for (size_t k = 0; k < 4; ++k) {
    double expected = weights[k] / 10.0 * kDraws;
    EXPECT_NEAR(counts[k], expected, expected * 0.05);
  }
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  AliasSampler alias({0.0, 1.0});
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(alias.Sample(&rng), 1u);
}

TEST(AliasSamplerTest, SingleBucket) {
  AliasSampler alias({3.0});
  Rng rng(7);
  EXPECT_EQ(alias.Sample(&rng), 0u);
}

}  // namespace
}  // namespace iqn

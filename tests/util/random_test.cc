#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace iqn {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(1), b(1), c(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  bool differs = false;
  Rng a2(1);
  for (int i = 0; i < 4 && !differs; ++i) differs = a2.Next() != c.Next();
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
  // bound 1 always yields 0.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Uniform(1), 0u);
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(4);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.Uniform(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(6);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(7);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, GaussianMoments) {
  Rng rng(8);
  constexpr int kDraws = 50000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  double mean = sum / kDraws;
  double var = sum2 / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(9);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> original = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, original);  // astronomically unlikely to match
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(10);
  auto sample = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 20u);
  for (size_t s : sample) EXPECT_LT(s, 50u);
}

TEST(RngTest, SampleAllElements) {
  Rng rng(11);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 10u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(12);
  Rng child = parent.Fork();
  // The child must not replay the parent's stream.
  Rng parent2(12);
  (void)parent2.Next();  // align with the Fork() consumption
  bool differs = false;
  for (int i = 0; i < 4 && !differs; ++i) differs = child.Next() != parent2.Next();
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace iqn

#include "util/mem_stats.h"

#include <string>

#include <gtest/gtest.h>

#include "util/metrics.h"
#include "util/thread_pool.h"

namespace iqn {
namespace {

TEST(MemTrackerTest, ChargeAndReleaseBalance) {
  MemTracker tracker("unit.balance");
  EXPECT_EQ(tracker.bytes(), 0);
  tracker.Charge(100);
  EXPECT_EQ(tracker.bytes(), 100);
  tracker.Release(40);
  EXPECT_EQ(tracker.bytes(), 60);
  tracker.Charge(-60);  // Release is Charge(-n); both directions work.
  EXPECT_EQ(tracker.bytes(), 0);
  EXPECT_EQ(tracker.name(), "unit.balance");
}

TEST(MemTrackerTest, ReleasingMoreThanChargedDies) {
  MemTracker tracker("unit.negative");
  tracker.Charge(8);
  EXPECT_DEATH(tracker.Release(9), "CHECK failed");
}

TEST(MemStatsTest, GetTrackerRegistersOnceWithStableAddress) {
  MemStats stats;
  MemTracker* a = stats.GetTracker("component.a");
  MemTracker* again = stats.GetTracker("component.a");
  MemTracker* b = stats.GetTracker("component.b");
  EXPECT_EQ(a, again);
  EXPECT_NE(a, b);
  a->Charge(10);
  EXPECT_EQ(again->bytes(), 10);
}

TEST(MemStatsTest, SnapshotCopiesEveryBalanceSorted) {
  MemStats stats;
  stats.GetTracker("z.last")->Charge(3);
  stats.GetTracker("a.first")->Charge(1);
  std::map<std::string, int64_t> snapshot = stats.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot.begin()->first, "a.first");
  EXPECT_EQ(snapshot.at("a.first"), 1);
  EXPECT_EQ(snapshot.at("z.last"), 3);
}

TEST(MemStatsTest, ConcurrentChargeReleasePairsBalanceToZero) {
  MemStats stats;
  MemTracker* tracker = stats.GetTracker("concurrent");
  // Seed balance so no interleaving of the paired charge/release below
  // can transiently drive the balance negative.
  tracker->Charge(1 << 20);
  auto pool = ThreadPool::Create(8);
  ASSERT_TRUE(pool.ok());
  Status st = pool.value()->ParallelFor(
      0, 10000, 1, [tracker](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          tracker->Charge(64);
          tracker->Release(64);
        }
        return Status::OK();
      });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(tracker->bytes(), 1 << 20);
}

TEST(MemStatsTest, PublishGaugesMirrorsBalancesAndPeakRss) {
  MemStats stats;
  stats.GetTracker("unit.publish")->Charge(123);
  MetricsRegistry registry;
  stats.PublishGauges(&registry);
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.gauges.count("mem.unit.publish.bytes"), 1u);
  EXPECT_EQ(snapshot.gauges.at("mem.unit.publish.bytes"), 123.0);
  ASSERT_EQ(snapshot.gauges.count("mem.peak_rss_bytes"), 1u);
  // OS-dependent in magnitude, but on Linux /proc/self/status exists
  // and a running process has a nonzero high-water mark.
  EXPECT_GT(snapshot.gauges.at("mem.peak_rss_bytes"), 0.0);
}

TEST(MemStatsTest, DefaultIsAProcessSingletonWithCanonicalNames) {
  EXPECT_EQ(&MemStats::Default(), &MemStats::Default());
  // The canonical component trackers share one spelling between owners
  // and reports; looking them up must never create duplicates.
  EXPECT_EQ(MemStats::Default().GetTracker(kMemPostings),
            MemStats::Default().GetTracker("ir.postings"));
}

TEST(ReadPeakRssBytesTest, PositiveWhereProcExists) {
  EXPECT_GT(ReadPeakRssBytes(), 0);
}

}  // namespace
}  // namespace iqn

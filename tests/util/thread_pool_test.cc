// ThreadPool + Latch tests, including the contended stress cases the
// ThreadSanitizer CI job exists for: concurrent ParallelFor from several
// driver pools, Schedule storms, nested ParallelFor, and shutdown while
// work is queued. None of these tests use raw std::thread — the pool is
// the repo's only thread source (tools/lint.sh enforces this), so a
// second pool serves as the "external threads" driver.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace iqn {
namespace {

TEST(ThreadPoolTest, CreateValidates) {
  EXPECT_FALSE(ThreadPool::Create(0).ok());
  EXPECT_FALSE(ThreadPool::Create(513).ok());
  EXPECT_TRUE(ThreadPool::Create(1).ok());
}

TEST(ThreadPoolTest, DefaultConcurrencyIsPositive) {
  EXPECT_GE(ThreadPool::DefaultConcurrency(), 1u);
}

TEST(ThreadPoolTest, ScheduleRunsTasks) {
  auto pool = ThreadPool::Create(4);
  ASSERT_TRUE(pool.ok());
  std::atomic<int> counter{0};
  Latch done(100);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.value()
                    ->Schedule([&counter, &done] {
                      counter.fetch_add(1, std::memory_order_relaxed);
                      done.CountDown();
                    })
                    .ok());
  }
  done.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  auto pool = ThreadPool::Create(4);
  ASSERT_TRUE(pool.ok());
  for (size_t n : {0u, 1u, 7u, 64u, 1000u}) {
    for (size_t grain : {0u, 1u, 3u, 16u, 2000u}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h.store(0);
      Status st = pool.value()->ParallelFor(
          0, n, grain, [&hits](size_t lo, size_t hi) -> Status {
            for (size_t i = lo; i < hi; ++i) {
              hits[i].fetch_add(1, std::memory_order_relaxed);
            }
            return Status::OK();
          });
      ASSERT_TRUE(st.ok());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "index " << i << " n=" << n
                                     << " grain=" << grain;
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForNonZeroBegin) {
  auto pool = ThreadPool::Create(2);
  ASSERT_TRUE(pool.ok());
  std::atomic<uint64_t> sum{0};
  ASSERT_TRUE(pool.value()
                  ->ParallelFor(10, 20, 4,
                                [&sum](size_t lo, size_t hi) -> Status {
                                  for (size_t i = lo; i < hi; ++i) {
                                    sum.fetch_add(i);
                                  }
                                  return Status::OK();
                                })
                  .ok());
  EXPECT_EQ(sum.load(), 145u);  // 10 + 11 + ... + 19
}

TEST(ThreadPoolTest, ParallelForReturnsLowestChunkError) {
  auto pool = ThreadPool::Create(4);
  ASSERT_TRUE(pool.ok());
  // Chunks 3 and 7 fail (grain 10 → chunk c covers [10c, 10c+10)); the
  // reported error must be chunk 3's regardless of scheduling.
  for (int round = 0; round < 20; ++round) {
    Status st = pool.value()->ParallelFor(
        0, 100, 10, [](size_t lo, size_t) -> Status {
          if (lo == 30) return Status::Internal("chunk 3");
          if (lo == 70) return Status::Internal("chunk 7");
          return Status::OK();
        });
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.message(), "chunk 3");
  }
}

TEST(ThreadPoolTest, ParallelForConvertsExceptionsToStatus) {
  auto pool = ThreadPool::Create(2);
  ASSERT_TRUE(pool.ok());
  Status st = pool.value()->ParallelFor(
      0, 8, 1, [](size_t lo, size_t) -> Status {
        if (lo == 5) throw std::runtime_error("boom");
        return Status::OK();
      });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("boom"), std::string::npos);

  // The pool survives a throwing body and keeps working.
  std::atomic<int> counter{0};
  ASSERT_TRUE(pool.value()
                  ->ParallelFor(0, 16, 1,
                                [&counter](size_t, size_t) -> Status {
                                  counter.fetch_add(1);
                                  return Status::OK();
                                })
                  .ok());
  EXPECT_EQ(counter.load(), 16);
}

TEST(ThreadPoolTest, NestedParallelForFromWorkerRunsSerially) {
  auto pool = ThreadPool::Create(4);
  ASSERT_TRUE(pool.ok());
  ThreadPool* p = pool.value().get();
  std::atomic<uint64_t> total{0};
  Status st = p->ParallelFor(0, 8, 1, [&](size_t, size_t) -> Status {
    EXPECT_TRUE(p->InWorkerThread() || !p->InWorkerThread());  // callable
    // Inner loop must complete (serial fallback) instead of deadlocking.
    return p->ParallelFor(0, 100, 7, [&total](size_t lo, size_t hi) -> Status {
      total.fetch_add(hi - lo, std::memory_order_relaxed);
      return Status::OK();
    });
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(total.load(), 800u);
}

// The TSan centerpiece: two driver pools hammer one shared target pool
// with overlapping ParallelFor calls that all mutate shared atomics and
// disjoint slots of shared vectors.
TEST(ThreadPoolTest, ContendedParallelForStress) {
  auto target = ThreadPool::Create(4);
  auto drivers = ThreadPool::Create(4);
  ASSERT_TRUE(target.ok());
  ASSERT_TRUE(drivers.ok());
  ThreadPool* t = target.value().get();

  constexpr size_t kRounds = 8;
  constexpr size_t kItems = 257;  // not a multiple of any grain used
  std::atomic<uint64_t> grand_total{0};
  Status st = drivers.value()->ParallelFor(
      0, kRounds, 1, [&](size_t lo, size_t) -> Status {
        std::vector<uint64_t> slots(kItems, 0);
        IQN_RETURN_IF_ERROR(t->ParallelFor(
            0, kItems, 3 + lo % 5, [&slots](size_t b, size_t e) -> Status {
              for (size_t i = b; i < e; ++i) slots[i] = i + 1;
              return Status::OK();
            }));
        uint64_t sum = std::accumulate(slots.begin(), slots.end(),
                                       uint64_t{0});
        grand_total.fetch_add(sum, std::memory_order_relaxed);
        return Status::OK();
      });
  ASSERT_TRUE(st.ok());
  // Each round contributes 1 + 2 + ... + kItems.
  EXPECT_EQ(grand_total.load(), kRounds * (kItems * (kItems + 1) / 2));
}

TEST(ThreadPoolTest, ContendedLatchStress) {
  auto pool = ThreadPool::Create(8);
  ASSERT_TRUE(pool.ok());
  for (int round = 0; round < 50; ++round) {
    Latch latch(8);
    std::atomic<int> ready{0};
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(pool.value()
                      ->Schedule([&latch, &ready] {
                        ready.fetch_add(1, std::memory_order_relaxed);
                        latch.CountDown();
                      })
                      .ok());
    }
    latch.Wait();
    EXPECT_EQ(ready.load(), 8);
  }
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasksAndRefusesNewOnes) {
  auto pool = ThreadPool::Create(2);
  ASSERT_TRUE(pool.ok());
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(
        pool.value()->Schedule([&ran] { ran.fetch_add(1); }).ok());
  }
  pool.value()->Shutdown();
  // Shutdown joins only after the queue is drained.
  EXPECT_EQ(ran.load(), 64);
  Status st = pool.value()->Schedule([] {});
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  // ParallelFor still completes after shutdown — caller does all chunks.
  std::atomic<int> counter{0};
  ASSERT_TRUE(pool.value()
                  ->ParallelFor(0, 10, 1,
                                [&counter](size_t, size_t) -> Status {
                                  counter.fetch_add(1);
                                  return Status::OK();
                                })
                  .ok());
  EXPECT_EQ(counter.load(), 10);
  pool.value()->Shutdown();  // idempotent
}

TEST(LatchTest, ZeroCountWaitReturnsImmediately) {
  Latch latch(0);
  latch.Wait();  // must not block
}

TEST(LatchTest, CountDownByN) {
  Latch latch(5);
  latch.CountDown(3);
  latch.CountDown(2);
  latch.Wait();
}

}  // namespace
}  // namespace iqn

#include "util/profiler.h"

#include <string>

#include <gtest/gtest.h>

#include "util/trace.h"

namespace iqn {
namespace {

// query [0, 4.0) ms
//   route [1.0, 3.5)
//   merge [3.5, 4.0)
QueryTrace MakeTrace() {
  static double now;  // captured by reference; reset per call
  now = 0.0;
  QueryTrace trace([] { return now; });
  uint64_t query = trace.BeginSpan("query");
  now = 1.0;
  uint64_t route = trace.BeginSpan("route");
  now = 3.5;
  trace.EndSpan(route);
  uint64_t merge = trace.BeginSpan("merge");
  now = 4.0;
  trace.EndSpan(merge);
  trace.EndSpan(query);
  return trace;
}

TEST(BuildProfileTest, InclusiveExclusiveAndFoldedTotals) {
  QueryTrace trace = MakeTrace();
  ProfileReport report = BuildProfile({&trace});

  ASSERT_EQ(report.entries.size(), 3u);  // std::map order: merge, query, route
  const ProfileEntry& merge = report.entries[0];
  const ProfileEntry& query = report.entries[1];
  const ProfileEntry& route = report.entries[2];
  EXPECT_EQ(merge.label, "merge");
  EXPECT_EQ(query.label, "query");
  EXPECT_EQ(route.label, "route");
  EXPECT_EQ(query.count, 1u);
  EXPECT_DOUBLE_EQ(query.inclusive_us, 4000.0);
  // Exclusive = own duration minus the two children.
  EXPECT_DOUBLE_EQ(query.exclusive_us, 4000.0 - 2500.0 - 500.0);
  EXPECT_DOUBLE_EQ(route.inclusive_us, 2500.0);
  EXPECT_DOUBLE_EQ(route.exclusive_us, 2500.0);
  EXPECT_DOUBLE_EQ(merge.inclusive_us, 500.0);

  ASSERT_EQ(report.folded.size(), 3u);  // sorted by path
  EXPECT_EQ(report.folded[0].first, "query");
  EXPECT_EQ(report.folded[0].second, 1000u);
  EXPECT_EQ(report.folded[1].first, "query;merge");
  EXPECT_EQ(report.folded[1].second, 500u);
  EXPECT_EQ(report.folded[2].first, "query;route");
  EXPECT_EQ(report.folded[2].second, 2500u);
}

TEST(BuildProfileTest, MultipleTracesAggregateAndRerunsAreBitIdentical) {
  QueryTrace a = MakeTrace();
  QueryTrace b = MakeTrace();
  ProfileReport both = BuildProfile({&a, &b});
  EXPECT_EQ(both.entries[1].count, 2u);  // "query"
  EXPECT_DOUBLE_EQ(both.entries[1].inclusive_us, 8000.0);

  ProfileReport again = BuildProfile({&a, &b});
  EXPECT_EQ(both.ToFoldedString(), again.ToFoldedString());
  EXPECT_EQ(both.ToTableString(), again.ToTableString());
}

TEST(BuildProfileTest, ZeroDurationPathsAreKept) {
  static double now;
  now = 0.0;
  QueryTrace trace([] { return now; });
  uint64_t query = trace.BeginSpan("query");
  uint64_t decode = trace.BeginSpan("decode");  // zero simulated time
  trace.EndSpan(decode);
  trace.EndSpan(query);
  ProfileReport report = BuildProfile({&trace});
  ASSERT_EQ(report.folded.size(), 2u);
  EXPECT_EQ(report.folded[1].first, "query;decode");
  EXPECT_EQ(report.folded[1].second, 0u);
}

TEST(BuildProfileTest, FoldedStringIsFlamegraphInput) {
  QueryTrace trace = MakeTrace();
  std::string folded = BuildProfile({&trace}).ToFoldedString();
  EXPECT_EQ(folded, "query 1000\nquery;merge 500\nquery;route 2500\n");
}

TEST(CpuProfilerTest, WallLegIsOptIn) {
  CpuProfiler::ResetWall();
  {
    ScopedSpan off("profiler_test.off");
  }
  EXPECT_EQ(CpuProfiler::WallSnapshot().count("profiler_test.off"), 0u);

  CpuProfiler::Enable();
  {
    ScopedSpan on("profiler_test.on");
  }
  CpuProfiler::Disable();
  std::map<std::string, CpuProfiler::WallTotal> wall =
      CpuProfiler::WallSnapshot();
  ASSERT_EQ(wall.count("profiler_test.on"), 1u);
  EXPECT_EQ(wall["profiler_test.on"].count, 1u);
  EXPECT_GE(wall["profiler_test.on"].total_ns, 0);
  CpuProfiler::ResetWall();
}

TEST(AttachWallTotalsTest, MergesMatchingLabelsAndAppendsWallOnly) {
  CpuProfiler::ResetWall();
  CpuProfiler::RecordWall("query", 5000);
  CpuProfiler::RecordWall("profiler_test.wall_only", 7000);

  QueryTrace trace = MakeTrace();
  ProfileReport report = BuildProfile({&trace});
  AttachWallTotals(&report);
  CpuProfiler::ResetWall();

  ASSERT_EQ(report.entries.size(), 4u);  // + the wall-only label
  bool saw_query = false;
  bool saw_wall_only = false;
  for (const ProfileEntry& entry : report.entries) {
    if (entry.label == "query") {
      saw_query = true;
      EXPECT_DOUBLE_EQ(entry.wall_ns, 5000.0);
      EXPECT_DOUBLE_EQ(entry.inclusive_us, 4000.0);
    }
    if (entry.label == "profiler_test.wall_only") {
      saw_wall_only = true;
      EXPECT_DOUBLE_EQ(entry.wall_ns, 7000.0);
      EXPECT_DOUBLE_EQ(entry.inclusive_us, 0.0);
      EXPECT_EQ(entry.count, 1u);
    }
  }
  EXPECT_TRUE(saw_query);
  EXPECT_TRUE(saw_wall_only);
  // The table grows its wall column only when wall time exists.
  EXPECT_NE(report.ToTableString().find("wall_ms"), std::string::npos);
  EXPECT_EQ(BuildProfile({&trace}).ToTableString().find("wall_ms"),
            std::string::npos);
}

TEST(ProfileReportTest, JsonValueCarriesSpansAndFolded) {
  QueryTrace trace = MakeTrace();
  JsonValue doc = BuildProfile({&trace}).ToJsonValue();
  ASSERT_TRUE(doc.is_object());
  const JsonValue* spans = doc.Find("spans");
  ASSERT_NE(spans, nullptr);
  const JsonValue* query = spans->Find("query");
  ASSERT_NE(query, nullptr);
  EXPECT_DOUBLE_EQ(query->Find("inclusive_us")->number_value(), 4000.0);
  // wall_ns is omitted when no wall time was recorded.
  EXPECT_EQ(query->Find("wall_ns"), nullptr);
  const JsonValue* folded = doc.Find("folded");
  ASSERT_NE(folded, nullptr);
  EXPECT_DOUBLE_EQ(folded->Find("query;route")->number_value(), 2500.0);
}

}  // namespace
}  // namespace iqn

#include "util/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace iqn {
namespace {

TEST(Mix64Test, DeterministicAndDispersed) {
  EXPECT_EQ(Mix64(1), Mix64(1));
  std::unordered_set<uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) seen.insert(Mix64(i));
  EXPECT_EQ(seen.size(), 10000u);  // no collisions on consecutive inputs
}

TEST(Hash64Test, SeedChangesOutput) {
  EXPECT_NE(Hash64(123, 0), Hash64(123, 1));
  EXPECT_EQ(Hash64(123, 7), Hash64(123, 7));
}

TEST(HashBytesTest, MatchesForEqualInput) {
  const char a[] = "hello world";
  EXPECT_EQ(HashBytes(a, sizeof(a)), HashBytes(a, sizeof(a)));
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_NE(HashString("abc", 1), HashString("abc", 2));
}

TEST(HashBytesTest, EmptyInputIsValid) {
  EXPECT_EQ(HashString(""), HashString(""));
  EXPECT_NE(HashString("", 1), HashString("", 2));
}

TEST(MulAddMod61Test, MatchesNaiveForSmallValues) {
  for (uint64_t a = 1; a < 50; a += 7) {
    for (uint64_t x = 0; x < 50; x += 11) {
      for (uint64_t b = 0; b < 50; b += 13) {
        EXPECT_EQ(MulAddMod61(a, x, b), (a * x + b) % kMersenne61);
      }
    }
  }
}

TEST(MulAddMod61Test, LargeOperandsStayBelowModulus) {
  uint64_t big = kMersenne61 - 1;
  EXPECT_LT(MulAddMod61(big, big, big), kMersenne61);
  // (U-1)*(U-1) + (U-1) = U^2 - U ≡ 1 - 1 = 0 (mod U)
  EXPECT_EQ(MulAddMod61(big, big, big), 0u);
}

TEST(UniversalHashFamilyTest, SameSeedSameParameters) {
  UniversalHashFamily f1(42), f2(42), f3(43);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(f1.MultiplierFor(i), f2.MultiplierFor(i));
    EXPECT_EQ(f1.OffsetFor(i), f2.OffsetFor(i));
    EXPECT_EQ(f1.Apply(i, 12345), f2.Apply(i, 12345));
  }
  // Different seeds should disagree somewhere early.
  bool differs = false;
  for (size_t i = 0; i < 4 && !differs; ++i) {
    differs = f1.Apply(i, 12345) != f3.Apply(i, 12345);
  }
  EXPECT_TRUE(differs);
}

TEST(UniversalHashFamilyTest, IsPermutationOnSample) {
  // A linear map with a != 0 over Z_p is injective; check no collisions
  // on a sample.
  UniversalHashFamily family(7);
  std::set<uint64_t> images;
  for (uint64_t x = 0; x < 5000; ++x) images.insert(family.Apply(3, x));
  EXPECT_EQ(images.size(), 5000u);
}

TEST(UniversalHashFamilyTest, MultiplierNeverZero) {
  UniversalHashFamily family(0);
  for (size_t i = 0; i < 1000; ++i) {
    EXPECT_NE(family.MultiplierFor(i), 0u);
    EXPECT_LT(family.MultiplierFor(i), kMersenne61);
    EXPECT_LT(family.OffsetFor(i), kMersenne61);
  }
}

TEST(DoubleHasherTest, ProbesWithinRangeAndSpread) {
  DoubleHasher hasher(999, 5);
  std::set<uint64_t> positions;
  for (size_t i = 0; i < 16; ++i) {
    uint64_t p = hasher.Probe(i, 1024);
    EXPECT_LT(p, 1024u);
    positions.insert(p);
  }
  EXPECT_GE(positions.size(), 12u);  // k probes should mostly be distinct
}

TEST(DoubleHasherTest, DifferentKeysDifferentProbes) {
  DoubleHasher h1(1, 0), h2(2, 0);
  size_t same = 0;
  for (size_t i = 0; i < 8; ++i) {
    if (h1.Probe(i, 4096) == h2.Probe(i, 4096)) ++same;
  }
  EXPECT_LE(same, 1u);
}

}  // namespace
}  // namespace iqn

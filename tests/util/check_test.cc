#include "util/check.h"

#include <gtest/gtest.h>

#include <string>

namespace iqn {
namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  IQN_CHECK(true);
  IQN_CHECK_EQ(1, 1);
  IQN_CHECK_NE(1, 2);
  IQN_CHECK_LT(1, 2);
  IQN_CHECK_LE(2, 2);
  IQN_CHECK_GT(3, 2);
  IQN_CHECK_GE(3, 3);
  IQN_DCHECK(true);
  IQN_DCHECK_EQ(std::string("a"), std::string("a"));
}

TEST(CheckTest, OperandsEvaluatedOnce) {
  int calls = 0;
  auto next = [&calls] { return ++calls; };
  IQN_CHECK_EQ(next(), 1);
  EXPECT_EQ(calls, 1);
  IQN_CHECK_LE(next(), 2);
  EXPECT_EQ(calls, 2);
}

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, FailedCheckAborts) {
  EXPECT_DEATH(IQN_CHECK(1 == 2), "CHECK failed: 1 == 2");
}

TEST(CheckDeathTest, FailedCheckEqPrintsOperands) {
  int lhs = 3, rhs = 7;
  EXPECT_DEATH(IQN_CHECK_EQ(lhs, rhs), "3 == 7");
}

TEST(CheckDeathTest, FailedCheckPrintsSourceLocation) {
  EXPECT_DEATH(IQN_CHECK_LT(5, 4), "check_test.cc");
}

TEST(CheckDeathTest, StringOperandsArePrinted) {
  std::string a = "alpha", b = "beta";
  EXPECT_DEATH(IQN_CHECK_EQ(a, b), "alpha == beta");
}

TEST(CheckDeathTest, DcheckMatchesBuildMode) {
#if IQN_DCHECK_ACTIVE_
  EXPECT_DEATH(IQN_DCHECK_GE(1, 2), "CHECK failed");
#else
  IQN_DCHECK_GE(1, 2);  // compiled out: must not abort or evaluate
#endif
}

struct Unprintable {
  int v;
  bool operator==(const Unprintable&) const { return false; }
};

TEST(CheckDeathTest, UnprintableOperandsFallBack) {
  Unprintable a{1}, b{2};
  EXPECT_DEATH(IQN_CHECK_EQ(a, b), "<unprintable>");
}

}  // namespace
}  // namespace iqn

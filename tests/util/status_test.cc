#include "util/status.h"

#include <gtest/gtest.h>

namespace iqn {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad input");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad input");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status Fails() { return Status::Internal("boom"); }
Status Succeeds() { return Status::OK(); }

Status UseReturnIfError(bool fail) {
  IQN_RETURN_IF_ERROR(fail ? Fails() : Succeeds());
  return Status::OK();
}

TEST(MacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UseReturnIfError(false).ok());
  EXPECT_EQ(UseReturnIfError(true).code(), StatusCode::kInternal);
}

Result<int> MakeInt(bool fail) {
  if (fail) return Status::OutOfRange("nope");
  return 5;
}

Result<int> UseAssignOrReturn(bool fail) {
  IQN_ASSIGN_OR_RETURN(int v, MakeInt(fail));
  return v + 1;
}

TEST(MacroTest, AssignOrReturnBindsOrPropagates) {
  Result<int> ok = UseAssignOrReturn(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 6);
  Result<int> err = UseAssignOrReturn(true);
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace iqn

#include "util/bytes.h"

#include <gtest/gtest.h>

#include <limits>

namespace iqn {
namespace {

TEST(BytesTest, RoundTripAllTypes) {
  ByteWriter writer;
  writer.PutU8(0xab);
  writer.PutU32(0xdeadbeef);
  writer.PutU64(0x1122334455667788ULL);
  writer.PutVarint(300);
  writer.PutDouble(3.14159);
  writer.PutBytes({1, 2, 3});
  writer.PutString("hello");

  ByteReader reader(writer.data());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64, varint;
  double d;
  Bytes bytes;
  std::string s;
  ASSERT_TRUE(reader.GetU8(&u8).ok());
  ASSERT_TRUE(reader.GetU32(&u32).ok());
  ASSERT_TRUE(reader.GetU64(&u64).ok());
  ASSERT_TRUE(reader.GetVarint(&varint).ok());
  ASSERT_TRUE(reader.GetDouble(&d).ok());
  ASSERT_TRUE(reader.GetBytes(&bytes).ok());
  ASSERT_TRUE(reader.GetString(&s).ok());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x1122334455667788ULL);
  EXPECT_EQ(varint, 300u);
  EXPECT_DOUBLE_EQ(d, 3.14159);
  EXPECT_EQ(bytes, (Bytes{1, 2, 3}));
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BytesTest, VarintBoundaries) {
  for (uint64_t v : {uint64_t{0}, uint64_t{127}, uint64_t{128},
                     uint64_t{16383}, uint64_t{16384},
                     std::numeric_limits<uint64_t>::max()}) {
    ByteWriter writer;
    writer.PutVarint(v);
    ByteReader reader(writer.data());
    uint64_t out;
    ASSERT_TRUE(reader.GetVarint(&out).ok());
    EXPECT_EQ(out, v);
    EXPECT_TRUE(reader.AtEnd());
  }
}

TEST(BytesTest, VarintEncodingIsCompact) {
  ByteWriter writer;
  writer.PutVarint(127);
  EXPECT_EQ(writer.size(), 1u);
  ByteWriter writer2;
  writer2.PutVarint(128);
  EXPECT_EQ(writer2.size(), 2u);
}

TEST(BytesTest, TruncatedReadsFailWithCorruption) {
  ByteWriter writer;
  writer.PutU32(7);
  ByteReader reader(writer.data());
  uint64_t u64;
  EXPECT_EQ(reader.GetU64(&u64).code(), StatusCode::kCorruption);
}

TEST(BytesTest, TruncatedVarintFails) {
  Bytes bytes = {0x80, 0x80};  // continuation bits with no terminator
  ByteReader reader(bytes);
  uint64_t v;
  EXPECT_EQ(reader.GetVarint(&v).code(), StatusCode::kCorruption);
}

TEST(BytesTest, OverlongVarintFails) {
  Bytes bytes(11, 0x80);  // 11 continuation bytes > max 10
  bytes.push_back(0x01);
  ByteReader reader(bytes);
  uint64_t v;
  EXPECT_EQ(reader.GetVarint(&v).code(), StatusCode::kCorruption);
}

TEST(BytesTest, TruncatedStringFails) {
  ByteWriter writer;
  writer.PutVarint(100);  // claims 100 bytes follow
  writer.PutU8('x');
  ByteReader reader(writer.data());
  std::string s;
  EXPECT_EQ(reader.GetString(&s).code(), StatusCode::kCorruption);
}

TEST(BytesTest, SpecialDoubles) {
  for (double v : {0.0, -0.0, 1e308, -1e-308,
                   std::numeric_limits<double>::infinity()}) {
    ByteWriter writer;
    writer.PutDouble(v);
    ByteReader reader(writer.data());
    double out;
    ASSERT_TRUE(reader.GetDouble(&out).ok());
    EXPECT_EQ(out, v);
  }
}

TEST(BytesTest, EmptyByteStringAndString) {
  ByteWriter writer;
  writer.PutBytes({});
  writer.PutString("");
  ByteReader reader(writer.data());
  Bytes b;
  std::string s;
  ASSERT_TRUE(reader.GetBytes(&b).ok());
  ASSERT_TRUE(reader.GetString(&s).ok());
  EXPECT_TRUE(b.empty());
  EXPECT_TRUE(s.empty());
}

TEST(BytesTest, PutRawAppendsWithoutFraming) {
  ByteWriter writer;
  const char data[3] = {'a', 'b', 'c'};
  writer.PutRaw(data, 3);
  EXPECT_EQ(writer.size(), 3u);
  EXPECT_EQ(writer.data()[0], 'a');
}

TEST(BytesTest, TakeMovesBuffer) {
  ByteWriter writer;
  writer.PutU8(9);
  Bytes taken = writer.Take();
  EXPECT_EQ(taken.size(), 1u);
}

}  // namespace
}  // namespace iqn

#include "util/trace.h"

#include <gtest/gtest.h>

namespace iqn {
namespace {

TEST(QueryTraceTest, RecordsNestedSpansWithSimulatedTimestamps) {
  double now = 0.0;
  QueryTrace trace([&now] { return now; });
  uint64_t outer = trace.BeginSpan("outer");
  now = 1.5;
  uint64_t inner = trace.BeginSpan("inner");
  now = 2.0;
  trace.EndSpan(inner);
  now = 3.0;
  trace.EndSpan(outer);

  ASSERT_EQ(trace.spans().size(), 2u);
  const TraceSpan& o = trace.spans()[0];
  const TraceSpan& i = trace.spans()[1];
  EXPECT_EQ(o.name, "outer");
  EXPECT_EQ(o.parent_id, 0u);
  EXPECT_DOUBLE_EQ(o.start_ms, 0.0);
  EXPECT_DOUBLE_EQ(o.end_ms, 3.0);
  EXPECT_EQ(i.name, "inner");
  EXPECT_EQ(i.parent_id, o.id);
  EXPECT_DOUBLE_EQ(i.start_ms, 1.5);
  EXPECT_DOUBLE_EQ(i.end_ms, 2.0);
}

TEST(QueryTraceTest, FindReturnsFirstMatchByName) {
  QueryTrace trace([] { return 0.0; });
  uint64_t a = trace.BeginSpan("phase");
  trace.EndSpan(a);
  uint64_t b = trace.BeginSpan("phase");
  trace.EndSpan(b);
  const TraceSpan* found = trace.Find("phase");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->id, a);
  EXPECT_EQ(trace.Find("missing"), nullptr);
}

TEST(QueryTraceTest, AttrsKeepInsertionOrderAndAllowRepeatedKeys) {
  QueryTrace trace([] { return 0.0; });
  uint64_t id = trace.BeginSpan("s");
  trace.AddAttr(id, "cand", "first");
  trace.AddAttr(id, "cand", "second");
  trace.EndSpan(id);
  const std::vector<TraceAttr>& attrs = trace.spans()[0].attrs;
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_EQ(attrs[0].value, "first");
  EXPECT_EQ(attrs[1].value, "second");
}

TEST(ScopedSpanTest, NoOpWithoutInstalledTrace) {
  ScopedSpan span("orphan");
  EXPECT_FALSE(span.active());
  span.Attr("k", "v");  // must not crash
  span.End();
}

TEST(ScopedSpanTest, LandsInAmbientTraceAndEndIsIdempotent) {
  QueryTrace trace([] { return 0.0; });
  {
    TraceScope scope(&trace);
    ScopedSpan span("work");
    EXPECT_TRUE(span.active());
    span.Attr("key", "value");
    span.AttrUint("n", 7);
    span.AttrDouble("x", 0.25);
    span.End();
    span.End();  // second End must be a no-op
  }
  ASSERT_EQ(trace.spans().size(), 1u);
  const TraceSpan& s = trace.spans()[0];
  EXPECT_EQ(s.name, "work");
  ASSERT_EQ(s.attrs.size(), 3u);
  EXPECT_EQ(s.attrs[1].key, "n");
  EXPECT_EQ(s.attrs[1].value, "7");
  EXPECT_EQ(s.attrs[2].value, "0.25");
}

TEST(TraceScopeTest, ScopesNestAndRestore) {
  QueryTrace outer([] { return 0.0; });
  QueryTrace inner([] { return 0.0; });
  EXPECT_EQ(TraceScope::Current(), nullptr);
  {
    TraceScope a(&outer);
    EXPECT_EQ(TraceScope::Current(), &outer);
    {
      TraceScope b(&inner);
      EXPECT_EQ(TraceScope::Current(), &inner);
    }
    EXPECT_EQ(TraceScope::Current(), &outer);
  }
  EXPECT_EQ(TraceScope::Current(), nullptr);
}

TEST(QueryTraceTest, DebugStringIsStableAndComplete) {
  double now = 0.0;
  QueryTrace trace([&now] { return now; });
  uint64_t id = trace.BeginSpan("query");
  trace.AddAttr(id, "k", "v");
  now = 0.5;
  trace.EndSpan(id);
  EXPECT_EQ(trace.ToDebugString(), "1<0 [0,0.5] query k=v\n");
}

TEST(ChromeTraceJsonTest, EmitsCompleteEventsInMicroseconds) {
  double now = 1.0;
  QueryTrace trace([&now] { return now; });
  uint64_t id = trace.BeginSpan("query");
  trace.AddAttr(id, "cand", "a");
  trace.AddAttr(id, "cand", "b");
  now = 2.5;
  trace.EndSpan(id);
  std::string json = ChromeTraceJson({&trace});
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 1000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 1500"), std::string::npos);
  // Repeated attr keys are deduplicated for Chrome's args object.
  EXPECT_NE(json.find("\"cand\": \"a\""), std::string::npos);
  EXPECT_NE(json.find("\"cand#1\": \"b\""), std::string::npos);
}

TEST(ChromeTraceJsonTest, EmptyInputIsValidJson) {
  EXPECT_EQ(ChromeTraceJson({}), "{\"traceEvents\": []}\n");
}

}  // namespace
}  // namespace iqn

#include "util/metrics.h"

#include <vector>

#include <gtest/gtest.h>

#include "util/thread_pool.h"

namespace iqn {
namespace {

TEST(CounterTest, StartsAtZeroAndIncrements) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsAllLand) {
  Counter c;
  constexpr size_t kThreads = 8;
  constexpr int kPerThread = 10000;
  auto pool = ThreadPool::Create(kThreads);
  ASSERT_TRUE(pool.ok());
  Status st = pool.value()->ParallelFor(
      0, kThreads, 1, [&c](size_t, size_t) {
        for (int i = 0; i < kPerThread; ++i) c.Increment();
        return Status::OK();
      });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAddReset) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Add(0.5);
  EXPECT_DOUBLE_EQ(g.Value(), 3.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
}

TEST(HistogramTest, BucketsObservationsByFirstBoundAtLeastValue) {
  Histogram h({1.0, 5.0, 10.0});
  h.Observe(0.5);   // bucket 0 (<= 1)
  h.Observe(1.0);   // bucket 0 (boundary inclusive)
  h.Observe(3.0);   // bucket 1
  h.Observe(10.0);  // bucket 2
  h.Observe(11.0);  // overflow
  std::vector<uint64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.Count(), 5u);
}

TEST(HistogramTest, SumIsQuantizedButClose) {
  Histogram h({100.0});
  h.Observe(0.25);  // representable in 1/1024 units exactly? 0.25*1024=256
  h.Observe(1.5);
  h.Observe(40.125);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.25 + 1.5 + 40.125);
  EXPECT_EQ(h.Count(), 3u);
}

TEST(HistogramTest, SumIsOrderIndependentAcrossThreads) {
  // Fixed-point accumulation: any interleaving of the same observations
  // produces the bit-identical sum. Run the same observation multiset
  // through several thread counts and compare.
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(0.001 * i + 0.37);
  double reference_sum = -1.0;
  for (int threads : {1, 2, 8}) {
    Histogram h({0.5, 1.0, 2.0});
    auto pool = ThreadPool::Create(static_cast<size_t>(threads));
    ASSERT_TRUE(pool.ok());
    Status st = pool.value()->ParallelFor(
        0, values.size(), 1, [&h, &values](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) h.Observe(values[i]);
          return Status::OK();
        });
    ASSERT_TRUE(st.ok());
    if (reference_sum < 0.0) {
      reference_sum = h.Sum();
    } else {
      EXPECT_EQ(h.Sum(), reference_sum) << "threads=" << threads;
    }
    EXPECT_EQ(h.Count(), values.size());
  }
}

TEST(HistogramTest, ResetZeroesEverything) {
  Histogram h({1.0});
  h.Observe(0.5);
  h.Observe(2.0);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
  for (uint64_t c : h.BucketCounts()) EXPECT_EQ(c, 0u);
}

TEST(RegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x");
  Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);
  a->Increment();
  EXPECT_EQ(b->Value(), 1u);

  Histogram* h1 = registry.GetHistogram("h", {1.0, 2.0});
  Histogram* h2 = registry.GetHistogram("h", {999.0});  // bounds ignored
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h2->bounds().size(), 2u);
}

TEST(RegistryTest, SnapshotCapturesAllInstruments) {
  MetricsRegistry registry;
  registry.GetCounter("c1")->Increment(3);
  registry.GetGauge("g1")->Set(1.5);
  registry.GetHistogram("h1", {1.0})->Observe(0.5);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("c1"), 3u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g1"), 1.5);
  const MetricsSnapshot::HistogramData& h = snap.histograms.at("h1");
  EXPECT_EQ(h.count, 1u);
  ASSERT_EQ(h.counts.size(), 2u);
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_DOUBLE_EQ(h.sum, 0.5);
}

TEST(RegistryTest, ResetZeroesButKeepsRegistrations) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c");
  Histogram* h = registry.GetHistogram("h", {1.0, 2.0});
  c->Increment(5);
  h->Observe(1.5);
  registry.Reset();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(h->Count(), 0u);
  // The same pointers stay registered (bounds preserved).
  EXPECT_EQ(registry.GetCounter("c"), c);
  EXPECT_EQ(registry.GetHistogram("h", {}), h);
  EXPECT_EQ(h->bounds().size(), 2u);
}

TEST(RegistryTest, SnapshotJsonHasAllSections) {
  MetricsRegistry registry;
  registry.GetCounter("net.messages")->Increment(7);
  registry.GetGauge("threads")->Set(4.0);
  registry.GetHistogram("lat", {1.0})->Observe(2.0);
  std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"net.messages\": 7"), std::string::npos);
}

TEST(RegistryTest, DefaultIsAProcessSingleton) {
  EXPECT_EQ(&MetricsRegistry::Default(), &MetricsRegistry::Default());
}

TEST(RegistryTest, SnapshotIsConsistentUnderActiveUpdates) {
  // One lane snapshots in a loop while the others hammer a shared
  // counter and keep registering fresh instruments (exercising the
  // registration mutex against Snapshot's map walk). Runs under TSan in
  // CI; the assertions here pin the semantic contract: every snapshot
  // is a point-in-time copy, so the counter value can only grow between
  // snapshots, and the final snapshot sees every increment.
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("concurrent.count");
  constexpr size_t kLanes = 8;
  constexpr uint64_t kPerLane = 20000;
  auto pool = ThreadPool::Create(kLanes);
  ASSERT_TRUE(pool.ok());
  Status st = pool.value()->ParallelFor(
      0, kLanes, 1, [&registry, counter](size_t lo, size_t hi) {
        for (size_t lane = lo; lane < hi; ++lane) {
          if (lane == 0) {
            uint64_t last = 0;
            for (int i = 0; i < 500; ++i) {
              MetricsSnapshot snap = registry.Snapshot();
              auto it = snap.counters.find("concurrent.count");
              if (it == snap.counters.end()) continue;
              EXPECT_GE(it->second, last);
              last = it->second;
            }
          } else {
            registry.GetGauge("concurrent.lane." + std::to_string(lane))
                ->Set(static_cast<double>(lane));
            for (uint64_t i = 0; i < kPerLane; ++i) counter->Increment();
          }
        }
        return Status::OK();
      });
  ASSERT_TRUE(st.ok());
  MetricsSnapshot final_snap = registry.Snapshot();
  EXPECT_EQ(final_snap.counters.at("concurrent.count"),
            (kLanes - 1) * kPerLane);
  EXPECT_EQ(final_snap.gauges.size(), kLanes - 1);
}

}  // namespace
}  // namespace iqn

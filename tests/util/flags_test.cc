#include "util/flags.h"

#include <gtest/gtest.h>

#include <vector>

namespace iqn {
namespace {

// Builds a mutable argv from string literals.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    ptrs_.push_back(const_cast<char*>("prog"));
    for (auto& s : storage_) ptrs_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

TEST(FlagsTest, DefaultsApplyWithoutArgs) {
  Flags flags;
  flags.DefineInt("n", 7, "count");
  flags.DefineString("name", "abc", "label");
  flags.DefineDouble("rate", 0.5, "rate");
  flags.DefineBool("verbose", false, "talky");
  Argv args({});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(flags.GetInt("n"), 7);
  EXPECT_EQ(flags.GetString("name"), "abc");
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 0.5);
  EXPECT_FALSE(flags.GetBool("verbose"));
}

TEST(FlagsTest, EqualsAndSpaceForms) {
  Flags flags;
  flags.DefineInt("n", 0, "");
  flags.DefineString("s", "", "");
  Argv args({"--n=42", "--s", "hello"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(flags.GetInt("n"), 42);
  EXPECT_EQ(flags.GetString("s"), "hello");
}

TEST(FlagsTest, BareBooleanFlag) {
  Flags flags;
  flags.DefineBool("fast", false, "");
  Argv args({"--fast"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_TRUE(flags.GetBool("fast"));
}

TEST(FlagsTest, UnknownFlagFails) {
  Flags flags;
  flags.DefineInt("n", 0, "");
  Argv args({"--bogus=1"});
  Status st = flags.Parse(args.argc(), args.argv());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(FlagsTest, BadIntegerFails) {
  Flags flags;
  flags.DefineInt("n", 0, "");
  Argv args({"--n=abc"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagsTest, BadDoubleFails) {
  Flags flags;
  flags.DefineDouble("x", 0.0, "");
  Argv args({"--x=12.5zz"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagsTest, BadBoolFails) {
  Flags flags;
  flags.DefineBool("b", false, "");
  Argv args({"--b=maybe"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagsTest, NegativeAndLargeIntegers) {
  Flags flags;
  flags.DefineInt("n", 0, "");
  Argv args({"--n=-123456789012"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(flags.GetInt("n"), -123456789012LL);
}

TEST(FlagsTest, PositionalArgumentsCollected) {
  Flags flags;
  flags.DefineInt("n", 0, "");
  Argv args({"pos1", "--n=1", "pos2"});
  ASSERT_TRUE(flags.Parse(args.argc(), args.argv()).ok());
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "pos1");
  EXPECT_EQ(flags.positional()[1], "pos2");
}

TEST(FlagsTest, MissingValueFails) {
  Flags flags;
  flags.DefineInt("n", 0, "");
  Argv args({"--n"});
  EXPECT_FALSE(flags.Parse(args.argc(), args.argv()).ok());
}

TEST(FlagsTest, UsageListsFlags) {
  Flags flags;
  flags.DefineInt("count", 3, "how many");
  std::string usage = flags.Usage("tool");
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("how many"), std::string::npos);
}

}  // namespace
}  // namespace iqn

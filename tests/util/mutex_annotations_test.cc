// Tests for the annotated locking primitives (util/mutex.h).
//
// The Clang thread-safety analysis proves the *static* discipline (CI's
// static-analysis job builds with -Werror=thread-safety-analysis); these
// tests pin down the *dynamic* behavior — mutual exclusion, reader
// concurrency, CondVar wakeups — and give ThreadSanitizer contended
// executions to race-check. All contention is driven through ThreadPool
// (the repo's only thread source).

#include "util/mutex.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "util/thread_pool.h"

namespace iqn {
namespace {

std::unique_ptr<ThreadPool> MakePool(size_t n) {
  auto pool = ThreadPool::Create(n);
  IQN_CHECK(pool.ok());
  return std::move(pool).value();
}

TEST(MutexTest, MutexLockProvidesMutualExclusion) {
  // A non-atomic counter incremented under the lock from many workers:
  // any missing exclusion shows up as a lost update (and as a TSan race).
  Mutex mu;
  int64_t counter = 0;
  auto pool = MakePool(8);
  constexpr size_t kIncrements = 20000;
  Status status =
      pool->ParallelFor(0, kIncrements, 1, [&](size_t, size_t) {
        MutexLock lock(&mu);
        ++counter;
        return Status::OK();
      });
  ASSERT_TRUE(status.ok()) << status.ToString();
  MutexLock lock(&mu);
  EXPECT_EQ(counter, static_cast<int64_t>(kIncrements));
}

TEST(MutexTest, TryLockFailsWhileHeldAndSucceedsAfter) {
  Mutex mu;
  mu.Lock();
  // TryLock from another thread must fail while we hold the lock.
  auto pool = MakePool(1);
  bool acquired_while_held = true;
  ASSERT_TRUE(pool
                  ->ParallelFor(0, 1, 1,
                                [&](size_t, size_t) {
                                  acquired_while_held = mu.TryLock();
                                  if (acquired_while_held) mu.Unlock();
                                  return Status::OK();
                                })
                  .ok());
  mu.Unlock();
  EXPECT_FALSE(acquired_while_held);
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, SharedMutexWriterExcludesReaders) {
  // Writers mutate a two-field invariant (a == b); readers assert it.
  // Torn reads would break the invariant check, and TSan would flag any
  // reader/writer overlap as a race if the lock were wrong.
  SharedMutex mu;
  int64_t a = 0;
  int64_t b = 0;
  auto pool = MakePool(8);
  constexpr size_t kOps = 10000;
  Status status = pool->ParallelFor(0, kOps, 1, [&](size_t i, size_t) {
    if (i % 4 == 0) {
      WriterMutexLock lock(&mu);
      ++a;
      ++b;
    } else {
      ReaderMutexLock lock(&mu);
      if (a != b) return Status::Internal("reader saw torn write");
    }
    return Status::OK();
  });
  ASSERT_TRUE(status.ok()) << status.ToString();
  WriterMutexLock lock(&mu);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, static_cast<int64_t>(kOps / 4 + (kOps % 4 != 0)));
}

TEST(MutexTest, CondVarWaitReleasesAndReacquires) {
  // Producer/consumer handshake across two pools: the consumer waits on
  // the CondVar (releasing the lock — otherwise the producer could never
  // set the flag), the producer flips the flag and notifies.
  Mutex mu;
  CondVar cv;
  bool ready = false;
  bool consumed = false;

  auto consumer = MakePool(1);
  auto producer = MakePool(1);
  Latch done(2);

  ASSERT_TRUE(consumer
                  ->Schedule([&] {
                    MutexLock lock(&mu);
                    while (!ready) cv.Wait(&mu);
                    consumed = true;
                    done.CountDown();
                  })
                  .ok());
  ASSERT_TRUE(producer
                  ->Schedule([&] {
                    {
                      MutexLock lock(&mu);
                      ready = true;
                    }
                    cv.NotifyOne();
                    done.CountDown();
                  })
                  .ok());
  done.Wait();
  MutexLock lock(&mu);
  EXPECT_TRUE(ready);
  EXPECT_TRUE(consumed);
}

TEST(MutexTest, CondVarPredicateOverloadWaits) {
  // The predicate overload with an unguarded (self-synchronized via mu
  // at the call sites) flag; guarded predicates belong in explicit
  // while-loops per the header note.
  Mutex mu;
  CondVar cv;
  int stage = 0;

  auto pool = MakePool(2);
  Latch done(1);
  ASSERT_TRUE(pool
                  ->Schedule([&] {
                    MutexLock lock(&mu);
                    cv.Wait(&mu, [&] { return stage == 2; });
                    done.CountDown();
                  })
                  .ok());
  for (int s = 1; s <= 2; ++s) {
    {
      MutexLock lock(&mu);
      stage = s;
    }
    cv.NotifyAll();
  }
  done.Wait();
  MutexLock lock(&mu);
  EXPECT_EQ(stage, 2);
}

TEST(MutexTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int64_t awake = 0;

  constexpr size_t kWaiters = 4;
  auto pool = MakePool(kWaiters);
  Latch done(kWaiters);
  for (size_t i = 0; i < kWaiters; ++i) {
    ASSERT_TRUE(pool
                    ->Schedule([&] {
                      MutexLock lock(&mu);
                      while (!go) cv.Wait(&mu);
                      ++awake;
                      done.CountDown();
                    })
                    .ok());
  }
  {
    MutexLock lock(&mu);
    go = true;
  }
  cv.NotifyAll();
  done.Wait();
  MutexLock lock(&mu);
  EXPECT_EQ(awake, static_cast<int64_t>(kWaiters));
}

TEST(MutexTest, ManyReadersProceedConcurrently) {
  // Pure-reader load over a SharedMutex: correctness here is "no
  // deadlock, no race" (TSan), plus every reader sees the committed
  // value. Also exercises reader re-entry from many pool workers.
  SharedMutex mu;
  int64_t value = 0;
  {
    WriterMutexLock lock(&mu);
    value = 42;
  }
  auto pool = MakePool(8);
  Status status = pool->ParallelFor(0, 5000, 1, [&](size_t, size_t) {
    ReaderMutexLock lock(&mu);
    return value == 42 ? Status::OK()
                       : Status::Internal("reader saw stale value");
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
}

}  // namespace
}  // namespace iqn

#include "util/bench_report.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "util/json_value.h"

namespace iqn {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(BenchReportTest, BuildEmitsFixedHeaderThenSectionsThenResources) {
  BenchReport report("unit_bench",
                     JsonValue::Object({{"seed", JsonValue::Number(42)}}));
  report.AddSection("results", JsonValue::Array({JsonValue::Number(1)}));
  report.AddSection("pass", JsonValue::Bool(true));
  JsonValue doc = report.Build();
  ASSERT_TRUE(doc.is_object());

  const auto& members = doc.members();
  ASSERT_EQ(members.size(), 9u);
  EXPECT_EQ(members[0].first, "schema");
  EXPECT_EQ(members[0].second.string_value(), "iqn.bench_report.v1");
  EXPECT_EQ(members[1].first, "bench");
  EXPECT_EQ(members[1].second.string_value(), "unit_bench");
  EXPECT_EQ(members[2].first, "git_sha");
  EXPECT_EQ(members[3].first, "build_flags");
  EXPECT_EQ(members[4].first, "workload");
  EXPECT_DOUBLE_EQ(members[4].second.Find("seed")->number_value(), 42.0);
  // Bench sections keep insertion order; a metrics snapshot is appended
  // because none was supplied; resources always comes last.
  EXPECT_EQ(members[5].first, "results");
  EXPECT_EQ(members[6].first, "pass");
  EXPECT_EQ(members[7].first, "metrics");
  EXPECT_EQ(members[8].first, "resources");
  const JsonValue& resources = members[8].second;
  EXPECT_NE(resources.Find("peak_rss_bytes"), nullptr);
  ASSERT_NE(resources.Find("mem"), nullptr);
  EXPECT_TRUE(resources.Find("mem")->is_object());
}

TEST(BenchReportTest, SuppliedMetricsSectionIsNotDuplicated) {
  BenchReport report("unit_bench", JsonValue::Object({}));
  report.AddSection("metrics",
                    JsonValue::Object({{"sentinel", JsonValue::Number(7)}}));
  JsonValue doc = report.Build();
  size_t metrics_sections = 0;
  for (const auto& [key, value] : doc.members()) {
    if (key == "metrics") {
      ++metrics_sections;
      EXPECT_NE(value.Find("sentinel"), nullptr);
    }
  }
  EXPECT_EQ(metrics_sections, 1u);
}

TEST(BenchReportTest, ReservedSectionKeysDie) {
  BenchReport report("unit_bench", JsonValue::Object({}));
  EXPECT_DEATH(report.AddSection("schema", JsonValue::Bool(true)),
               "CHECK failed");
  EXPECT_DEATH(report.AddSection("resources", JsonValue::Bool(true)),
               "CHECK failed");
}

TEST(BenchReportTest, FromLegacyJsonPreservesSectionsInSourceOrder) {
  Result<BenchReport> report = BenchReport::FromLegacyJson(
      R"({"bench": "legacy", "workload": {"docs": 10},)"
      R"( "rows": [1, 2], "pass": true})");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  JsonValue doc = report.value().Build();
  EXPECT_EQ(doc.Find("bench")->string_value(), "legacy");
  EXPECT_DOUBLE_EQ(doc.Find("workload")->Find("docs")->number_value(), 10.0);
  const auto& members = doc.members();
  EXPECT_EQ(members[5].first, "rows");
  EXPECT_EQ(members[6].first, "pass");
}

TEST(BenchReportTest, FromLegacyJsonRejectsBadDocuments) {
  EXPECT_FALSE(BenchReport::FromLegacyJson("[1, 2]").ok());
  EXPECT_FALSE(BenchReport::FromLegacyJson("not json").ok());
  EXPECT_FALSE(BenchReport::FromLegacyJson(R"({"no_bench": 1})").ok());
  // Already-wrapped reports must not wrap twice.
  EXPECT_FALSE(BenchReport::FromLegacyJson(
                   R"({"schema": "iqn.bench_report.v1", "bench": "x"})")
                   .ok());
}

TEST(LegacyReportWriterTest, WrapsFprintfEmittedJson) {
  std::string path = testing::TempDir() + "/legacy_report_test.json";
  LegacyReportWriter writer;
  ASSERT_NE(writer.stream(), nullptr);
  std::fprintf(writer.stream(),
               "{\"bench\": \"shimmed\", \"workload\": {\"seed\": 1},\n"
               " \"series\": [{\"recall\": 0.5}]}\n");
  Status finished = writer.Finish(path);
  ASSERT_TRUE(finished.ok()) << finished.ToString();

  Result<JsonValue> doc = ParseJson(ReadFileOrDie(path));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc.value().Find("schema")->string_value(),
            "iqn.bench_report.v1");
  EXPECT_EQ(doc.value().Find("bench")->string_value(), "shimmed");
  ASSERT_NE(doc.value().Find("series"), nullptr);
  EXPECT_DOUBLE_EQ(doc.value()
                       .Find("series")
                       ->items()[0]
                       .Find("recall")
                       ->number_value(),
                   0.5);
  ASSERT_NE(doc.value().Find("resources"), nullptr);
  std::remove(path.c_str());
}

TEST(LegacyReportWriterTest, FinishFailsOnMalformedLegacyJson) {
  std::string path = testing::TempDir() + "/legacy_report_bad.json";
  LegacyReportWriter writer;
  ASSERT_NE(writer.stream(), nullptr);
  std::fprintf(writer.stream(), "{\"bench\": truncated");
  EXPECT_FALSE(writer.Finish(path).ok());
}

}  // namespace
}  // namespace iqn

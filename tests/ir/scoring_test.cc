#include "ir/scoring.h"

#include <gtest/gtest.h>

#include <cmath>

namespace iqn {
namespace {

TEST(TfIdfTest, ZeroForMissing) {
  EXPECT_DOUBLE_EQ(TfIdfScore(0, 5, 100), 0.0);
  EXPECT_DOUBLE_EQ(TfIdfScore(3, 0, 100), 0.0);
}

TEST(TfIdfTest, MatchesFormula) {
  double expected = (1.0 + std::log(3.0)) * std::log(1.0 + 100.0 / 5.0);
  EXPECT_DOUBLE_EQ(TfIdfScore(3, 5, 100), expected);
}

TEST(TfIdfTest, MonotoneInTfAntitoneInDf) {
  EXPECT_GT(TfIdfScore(5, 10, 1000), TfIdfScore(2, 10, 1000));
  EXPECT_GT(TfIdfScore(2, 5, 1000), TfIdfScore(2, 50, 1000));
}

TEST(Bm25Test, ZeroForMissing) {
  EXPECT_DOUBLE_EQ(Bm25Score(0, 5, 100, 50, 50, 1.2, 0.75), 0.0);
}

TEST(Bm25Test, TfSaturates) {
  double s1 = Bm25Score(1, 10, 1000, 100, 100, 1.2, 0.75);
  double s5 = Bm25Score(5, 10, 1000, 100, 100, 1.2, 0.75);
  double s50 = Bm25Score(50, 10, 1000, 100, 100, 1.2, 0.75);
  EXPECT_GT(s5, s1);
  EXPECT_GT(s50, s5);
  // Diminishing returns: the 5->50 jump adds less than 10x the 1->5 jump.
  EXPECT_LT(s50 - s5, 10 * (s5 - s1));
  // Hard ceiling: idf * (k1 + 1).
  double idf = std::log(1.0 + (1000.0 - 10 + 0.5) / (10 + 0.5));
  EXPECT_LT(s50, idf * 2.2);
}

TEST(Bm25Test, LongerDocumentsPenalized) {
  double short_doc = Bm25Score(2, 10, 1000, 50, 100, 1.2, 0.75);
  double long_doc = Bm25Score(2, 10, 1000, 400, 100, 1.2, 0.75);
  EXPECT_GT(short_doc, long_doc);
}

TEST(Bm25Test, BZeroDisablesLengthNormalization) {
  double a = Bm25Score(2, 10, 1000, 50, 100, 1.2, 0.0);
  double b = Bm25Score(2, 10, 1000, 400, 100, 1.2, 0.0);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(ScoreDispatchTest, SelectsConfiguredFunction) {
  ScoringModel tfidf;
  EXPECT_DOUBLE_EQ(Score(tfidf, 3, 5, 100, 50, 60), TfIdfScore(3, 5, 100));
  ScoringModel bm25;
  bm25.function = ScoringFunction::kBm25;
  EXPECT_DOUBLE_EQ(Score(bm25, 3, 5, 100, 50, 60),
                   Bm25Score(3, 5, 100, 50, 60, 1.2, 0.75));
}

}  // namespace
}  // namespace iqn

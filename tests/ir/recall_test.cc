#include "ir/recall.h"

#include <gtest/gtest.h>

namespace iqn {
namespace {

std::vector<ScoredDoc> Docs(std::initializer_list<DocId> ids) {
  std::vector<ScoredDoc> v;
  for (DocId id : ids) v.push_back(ScoredDoc{id, 1.0});
  return v;
}

TEST(RelativeRecallTest, FullAndPartialAndZero) {
  auto reference = Docs({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(RelativeRecall(Docs({1, 2, 3, 4}), reference), 1.0);
  EXPECT_DOUBLE_EQ(RelativeRecall(Docs({1, 2}), reference), 0.5);
  EXPECT_DOUBLE_EQ(RelativeRecall(Docs({9}), reference), 0.0);
  EXPECT_DOUBLE_EQ(RelativeRecall({}, reference), 0.0);
}

TEST(RelativeRecallTest, ExtraResultsDoNotHurt) {
  auto reference = Docs({1, 2});
  EXPECT_DOUBLE_EQ(RelativeRecall(Docs({1, 2, 99, 100}), reference), 1.0);
}

TEST(RelativeRecallTest, EmptyReferenceIsPerfect) {
  EXPECT_DOUBLE_EQ(RelativeRecall(Docs({1}), {}), 1.0);
}

TEST(DuplicateFractionTest, AllDistinct) {
  EXPECT_DOUBLE_EQ(DuplicateFraction({Docs({1, 2}), Docs({3, 4})}), 0.0);
}

TEST(DuplicateFractionTest, FullyRedundantPeers) {
  // Two peers returning the same 3 docs: 3 of 6 retrieved are duplicates.
  EXPECT_DOUBLE_EQ(DuplicateFraction({Docs({1, 2, 3}), Docs({1, 2, 3})}),
                   0.5);
}

TEST(DuplicateFractionTest, EmptyInput) {
  EXPECT_DOUBLE_EQ(DuplicateFraction({}), 0.0);
  EXPECT_DOUBLE_EQ(DuplicateFraction({{}, {}}), 0.0);
}

TEST(DistinctResultCountTest, CountsAcrossPeers) {
  EXPECT_EQ(DistinctResultCount({Docs({1, 2}), Docs({2, 3})}), 3u);
  EXPECT_EQ(DistinctResultCount({}), 0u);
}

}  // namespace
}  // namespace iqn

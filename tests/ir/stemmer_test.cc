#include "ir/stemmer.h"

#include <gtest/gtest.h>

namespace iqn {
namespace {

// Reference pairs from Porter's published examples and the standard
// test vocabulary.
struct Pair {
  const char* word;
  const char* stem;
};

class PorterPairTest : public testing::TestWithParam<Pair> {};

TEST_P(PorterPairTest, StemsToExpected) {
  PorterStemmer stemmer;
  EXPECT_EQ(stemmer.Stem(GetParam().word), GetParam().stem)
      << "word=" << GetParam().word;
}

INSTANTIATE_TEST_SUITE_P(
    ClassicExamples, PorterPairTest,
    testing::Values(
        // Step 1a
        Pair{"caresses", "caress"}, Pair{"ponies", "poni"},
        Pair{"caress", "caress"}, Pair{"cats", "cat"},
        // Step 1b
        Pair{"feed", "feed"}, Pair{"agreed", "agre"},
        Pair{"plastered", "plaster"}, Pair{"bled", "bled"},
        Pair{"motoring", "motor"}, Pair{"sing", "sing"},
        Pair{"conflated", "conflat"}, Pair{"troubled", "troubl"},
        Pair{"sized", "size"}, Pair{"hopping", "hop"},
        Pair{"tanned", "tan"}, Pair{"falling", "fall"},
        Pair{"hissing", "hiss"}, Pair{"fizzed", "fizz"},
        Pair{"failing", "fail"}, Pair{"filing", "file"},
        // Step 1c
        Pair{"happy", "happi"}, Pair{"sky", "sky"},
        // Step 2
        Pair{"relational", "relat"}, Pair{"conditional", "condit"},
        Pair{"rational", "ration"}, Pair{"valenci", "valenc"},
        Pair{"hesitanci", "hesit"}, Pair{"digitizer", "digit"},
        Pair{"conformabli", "conform"}, Pair{"radicalli", "radic"},
        Pair{"differentli", "differ"}, Pair{"vileli", "vile"},
        Pair{"analogousli", "analog"}, Pair{"vietnamization", "vietnam"},
        Pair{"predication", "predic"}, Pair{"operator", "oper"},
        Pair{"feudalism", "feudal"}, Pair{"decisiveness", "decis"},
        Pair{"hopefulness", "hope"}, Pair{"callousness", "callous"},
        Pair{"formaliti", "formal"}, Pair{"sensitiviti", "sensit"},
        Pair{"sensibiliti", "sensibl"},
        // Step 3
        Pair{"triplicate", "triplic"}, Pair{"formative", "form"},
        Pair{"formalize", "formal"}, Pair{"electriciti", "electr"},
        Pair{"electrical", "electr"}, Pair{"hopeful", "hope"},
        Pair{"goodness", "good"},
        // Step 4
        Pair{"revival", "reviv"}, Pair{"allowance", "allow"},
        Pair{"inference", "infer"}, Pair{"airliner", "airlin"},
        Pair{"gyroscopic", "gyroscop"}, Pair{"adjustable", "adjust"},
        Pair{"defensible", "defens"}, Pair{"irritant", "irrit"},
        Pair{"replacement", "replac"}, Pair{"adjustment", "adjust"},
        Pair{"dependent", "depend"}, Pair{"adoption", "adopt"},
        Pair{"homologou", "homolog"}, Pair{"communism", "commun"},
        Pair{"activate", "activ"}, Pair{"angulariti", "angular"},
        Pair{"homologous", "homolog"}, Pair{"effective", "effect"},
        Pair{"bowdlerize", "bowdler"},
        // Step 5
        Pair{"probate", "probat"}, Pair{"rate", "rate"},
        Pair{"cease", "ceas"}, Pair{"controll", "control"},
        Pair{"roll", "roll"}));

TEST(PorterStemmerTest, ShortWordsUntouched) {
  PorterStemmer stemmer;
  EXPECT_EQ(stemmer.Stem("a"), "a");
  EXPECT_EQ(stemmer.Stem("is"), "is");
  EXPECT_EQ(stemmer.Stem("be"), "be");
}

TEST(PorterStemmerTest, NonLowercaseReturnedUnchanged) {
  PorterStemmer stemmer;
  EXPECT_EQ(stemmer.Stem("Hello"), "Hello");
  EXPECT_EQ(stemmer.Stem("trec2003"), "trec2003");
}

TEST(PorterStemmerTest, InflectionsCollapseToOneStem) {
  PorterStemmer stemmer;
  std::string stem = stemmer.Stem("connect");
  for (const char* word : {"connected", "connecting", "connection",
                           "connections"}) {
    EXPECT_EQ(stemmer.Stem(word), stem) << word;
  }
}

TEST(PorterStemmerTest, IdempotentOnCommonVocabulary) {
  PorterStemmer stemmer;
  // Note: Porter is not idempotent on every word (e.g. "databases" ->
  // "databas" -> "databa"), matching the reference algorithm; the words
  // below are ones whose stems ARE stable.
  for (const char* word :
       {"running", "quickly", "organization", "happiness", "querying",
        "distributed", "retrieval", "estimation"}) {
    std::string once = stemmer.Stem(word);
    // Stems of real words should themselves be stable under re-stemming
    // (Porter is not idempotent in general, but is on these).
    EXPECT_EQ(stemmer.Stem(once), once) << word;
  }
}

}  // namespace
}  // namespace iqn

#include "ir/query.h"

#include <gtest/gtest.h>

namespace iqn {
namespace {

TEST(ParseQueryTest, RunsAnalysisChainAndDeduplicates) {
  Tokenizer tok;
  Query q = ParseQuery("The Forest Fires, forest fire!", tok);
  // "the" is a stopword; "fires"/"fire" and "forest"/"forest" stem to the
  // same terms and are deduplicated.
  ASSERT_EQ(q.terms.size(), 2u);
  EXPECT_EQ(q.terms[0], "forest");
  EXPECT_EQ(q.terms[1], "fire");
  EXPECT_EQ(q.mode, QueryMode::kDisjunctive);
  EXPECT_EQ(q.k, 10u);
}

TEST(ParseQueryTest, ModeAndKPropagate) {
  Tokenizer tok;
  Query q = ParseQuery("pest safety control", tok, QueryMode::kConjunctive,
                       25);
  EXPECT_EQ(q.mode, QueryMode::kConjunctive);
  EXPECT_EQ(q.k, 25u);
  EXPECT_EQ(q.terms.size(), 3u);
}

TEST(ParseQueryTest, EmptyAndStopwordOnlyInput) {
  Tokenizer tok;
  EXPECT_TRUE(ParseQuery("", tok).terms.empty());
  EXPECT_TRUE(ParseQuery("the of and", tok).terms.empty());
}

TEST(QueryToStringTest, ShowsModeTermsAndK) {
  Query q;
  q.terms = {"forest", "fire"};
  q.mode = QueryMode::kConjunctive;
  q.k = 7;
  EXPECT_EQ(q.ToString(), "AND(forest, fire) top-7");
  q.mode = QueryMode::kDisjunctive;
  EXPECT_EQ(q.ToString(), "OR(forest, fire) top-7");
}

}  // namespace
}  // namespace iqn

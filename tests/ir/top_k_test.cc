#include "ir/top_k.h"

#include <gtest/gtest.h>

namespace iqn {
namespace {

Corpus FruitCorpus() {
  Corpus corpus;
  EXPECT_TRUE(corpus.AddDocumentTerms(1, {"apple", "banana"}).ok());
  EXPECT_TRUE(corpus.AddDocumentTerms(2, {"apple", "apple"}).ok());
  EXPECT_TRUE(corpus.AddDocumentTerms(3, {"banana", "cherry"}).ok());
  EXPECT_TRUE(corpus.AddDocumentTerms(4, {"cherry"}).ok());
  return corpus;
}

Query Q(std::vector<std::string> terms, QueryMode mode, size_t k = 10) {
  Query q;
  q.terms = std::move(terms);
  q.mode = mode;
  q.k = k;
  return q;
}

TEST(ExecuteQueryTest, DisjunctiveFindsAnyTermMatch) {
  InvertedIndex index = InvertedIndex::Build(FruitCorpus());
  auto results = ExecuteQuery(index, Q({"apple", "cherry"},
                                       QueryMode::kDisjunctive));
  ASSERT_EQ(results.size(), 4u);  // docs 1,2,3,4 all match something
}

TEST(ExecuteQueryTest, ConjunctiveRequiresAllTerms) {
  InvertedIndex index = InvertedIndex::Build(FruitCorpus());
  auto results = ExecuteQuery(index, Q({"apple", "banana"},
                                       QueryMode::kConjunctive));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].doc, 1u);
}

TEST(ExecuteQueryTest, ConjunctiveWithMissingTermIsEmpty) {
  InvertedIndex index = InvertedIndex::Build(FruitCorpus());
  EXPECT_TRUE(ExecuteQuery(index, Q({"apple", "durian"},
                                    QueryMode::kConjunctive))
                  .empty());
}

TEST(ExecuteQueryTest, DisjunctiveIgnoresMissingTerm) {
  InvertedIndex index = InvertedIndex::Build(FruitCorpus());
  auto results =
      ExecuteQuery(index, Q({"apple", "durian"}, QueryMode::kDisjunctive));
  EXPECT_EQ(results.size(), 2u);
}

TEST(ExecuteQueryTest, MultiTermMatchScoresHigher) {
  InvertedIndex index = InvertedIndex::Build(FruitCorpus());
  auto results = ExecuteQuery(index, Q({"banana", "cherry"},
                                       QueryMode::kDisjunctive));
  // Doc 3 matches both terms and must rank first.
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].doc, 3u);
}

TEST(ExecuteQueryTest, RespectsK) {
  InvertedIndex index = InvertedIndex::Build(FruitCorpus());
  auto results = ExecuteQuery(index, Q({"apple", "banana", "cherry"},
                                       QueryMode::kDisjunctive, 2));
  EXPECT_EQ(results.size(), 2u);
}

TEST(ExecuteQueryTest, EmptyQueryYieldsNothing) {
  InvertedIndex index = InvertedIndex::Build(FruitCorpus());
  EXPECT_TRUE(ExecuteQuery(index, Q({}, QueryMode::kDisjunctive)).empty());
}

TEST(ExecuteQueryTest, DeterministicOrdering) {
  InvertedIndex index = InvertedIndex::Build(FruitCorpus());
  auto a = ExecuteQuery(index, Q({"apple", "banana"}, QueryMode::kDisjunctive));
  auto b = ExecuteQuery(index, Q({"apple", "banana"}, QueryMode::kDisjunctive));
  EXPECT_EQ(a, b);
}

TEST(MergeResultsTest, DeduplicatesKeepingBestScore) {
  std::vector<std::vector<ScoredDoc>> lists = {
      {{1, 3.0}, {2, 2.0}},
      {{1, 5.0}, {3, 1.0}},
  };
  auto merged = MergeResults(lists, 10);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].doc, 1u);
  EXPECT_DOUBLE_EQ(merged[0].score, 5.0);
}

TEST(MergeResultsTest, TruncatesToK) {
  std::vector<std::vector<ScoredDoc>> lists = {
      {{1, 5.0}, {2, 4.0}, {3, 3.0}, {4, 2.0}},
  };
  auto merged = MergeResults(lists, 2);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].doc, 1u);
  EXPECT_EQ(merged[1].doc, 2u);
}

TEST(MergeResultsTest, EmptyInputs) {
  EXPECT_TRUE(MergeResults({}, 5).empty());
  EXPECT_TRUE(MergeResults({{}, {}}, 5).empty());
}

}  // namespace
}  // namespace iqn

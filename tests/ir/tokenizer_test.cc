#include "ir/tokenizer.h"

#include <gtest/gtest.h>

namespace iqn {
namespace {

TEST(TokenizerTest, SplitsOnNonAlphanumerics) {
  TokenizerOptions opts;
  opts.stem = false;
  opts.remove_stopwords = false;
  Tokenizer tok(opts);
  auto terms = tok.Tokenize("forest-fire, pest/safety control!");
  ASSERT_EQ(terms.size(), 5u);
  EXPECT_EQ(terms[0], "forest");
  EXPECT_EQ(terms[1], "fire");
  EXPECT_EQ(terms[2], "pest");
  EXPECT_EQ(terms[3], "safety");
  EXPECT_EQ(terms[4], "control");
}

TEST(TokenizerTest, Lowercases) {
  TokenizerOptions opts;
  opts.stem = false;
  Tokenizer tok(opts);
  auto terms = tok.Tokenize("Forest FIRE");
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[0], "forest");
  EXPECT_EQ(terms[1], "fire");
}

TEST(TokenizerTest, RemovesStopwords) {
  TokenizerOptions opts;
  opts.stem = false;
  Tokenizer tok(opts);
  auto terms = tok.Tokenize("the fire in the forest");
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[0], "fire");
  EXPECT_EQ(terms[1], "forest");
}

TEST(TokenizerTest, StopwordsCanBeKept) {
  TokenizerOptions opts;
  opts.stem = false;
  opts.remove_stopwords = false;
  Tokenizer tok(opts);
  EXPECT_EQ(tok.Tokenize("the fire").size(), 2u);  // "the" kept
}

TEST(TokenizerTest, StemsWhenEnabled) {
  Tokenizer tok;  // defaults: stem = true
  auto terms = tok.Tokenize("connected connections");
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[0], terms[1]);  // both reduce to the same stem
}

TEST(TokenizerTest, DropsShortTokens) {
  TokenizerOptions opts;
  opts.stem = false;
  opts.remove_stopwords = false;
  Tokenizer tok(opts);
  auto terms = tok.Tokenize("x yy zzz");
  ASSERT_EQ(terms.size(), 2u);  // "x" dropped (min length 2)
  EXPECT_EQ(terms[0], "yy");
}

TEST(TokenizerTest, TruncatesAbsurdlyLongTokens) {
  TokenizerOptions opts;
  opts.stem = false;
  Tokenizer tok(opts);
  std::string monster(500, 'a');
  auto terms = tok.Tokenize(monster);
  ASSERT_EQ(terms.size(), 1u);
  EXPECT_EQ(terms[0].size(), opts.max_token_length);
}

TEST(TokenizerTest, DigitsAreTokenCharacters) {
  TokenizerOptions opts;
  opts.stem = false;
  Tokenizer tok(opts);
  auto terms = tok.Tokenize("trec2003 web track");
  ASSERT_EQ(terms.size(), 3u);
  EXPECT_EQ(terms[0], "trec2003");
}

TEST(TokenizerTest, EmptyAndPunctuationOnlyInput) {
  Tokenizer tok;
  EXPECT_TRUE(tok.Tokenize("").empty());
  EXPECT_TRUE(tok.Tokenize("... --- !!!").empty());
}

TEST(TokenizerTest, IsStopwordQueriesList) {
  Tokenizer tok;
  EXPECT_TRUE(tok.IsStopword("the"));
  EXPECT_TRUE(tok.IsStopword("and"));
  EXPECT_FALSE(tok.IsStopword("fire"));
}

}  // namespace
}  // namespace iqn

#include "ir/inverted_index.h"

#include <gtest/gtest.h>

namespace iqn {
namespace {

Corpus SmallCorpus() {
  Corpus corpus;
  // doc 1: apple apple banana; doc 2: apple cherry; doc 3: banana.
  EXPECT_TRUE(corpus.AddDocumentTerms(1, {"apple", "apple", "banana"}).ok());
  EXPECT_TRUE(corpus.AddDocumentTerms(2, {"apple", "cherry"}).ok());
  EXPECT_TRUE(corpus.AddDocumentTerms(3, {"banana"}).ok());
  return corpus;
}

TEST(InvertedIndexTest, BuildsCorrectPostings) {
  InvertedIndex index = InvertedIndex::Build(SmallCorpus());
  EXPECT_EQ(index.NumTerms(), 3u);
  EXPECT_EQ(index.NumDocuments(), 3u);
  EXPECT_EQ(index.DocumentFrequency("apple"), 2u);
  EXPECT_EQ(index.DocumentFrequency("banana"), 2u);
  EXPECT_EQ(index.DocumentFrequency("cherry"), 1u);
  EXPECT_EQ(index.DocumentFrequency("durian"), 0u);
  EXPECT_EQ(index.postings("durian"), nullptr);
}

TEST(InvertedIndexTest, PostingsSortedByScoreDescending) {
  InvertedIndex index = InvertedIndex::Build(SmallCorpus());
  const auto* apple = index.postings("apple");
  ASSERT_NE(apple, nullptr);
  ASSERT_EQ(apple->size(), 2u);
  // Doc 1 has tf=2 for apple, doc 2 tf=1 -> doc 1 scores higher.
  EXPECT_EQ((*apple)[0].doc, 1u);
  EXPECT_GT((*apple)[0].score, (*apple)[1].score);
}

TEST(InvertedIndexTest, TiesBrokenByDocId) {
  Corpus corpus;
  ASSERT_TRUE(corpus.AddDocumentTerms(9, {"same"}).ok());
  ASSERT_TRUE(corpus.AddDocumentTerms(4, {"same"}).ok());
  InvertedIndex index = InvertedIndex::Build(corpus);
  const auto* list = index.postings("same");
  ASSERT_EQ(list->size(), 2u);
  EXPECT_EQ((*list)[0].doc, 4u);
  EXPECT_EQ((*list)[1].doc, 9u);
}

TEST(InvertedIndexTest, MaxAndAvgScore) {
  InvertedIndex index = InvertedIndex::Build(SmallCorpus());
  const auto* apple = index.postings("apple");
  double max = index.MaxScore("apple");
  double avg = index.AvgScore("apple");
  EXPECT_DOUBLE_EQ(max, (*apple)[0].score);
  EXPECT_DOUBLE_EQ(avg, ((*apple)[0].score + (*apple)[1].score) / 2);
  EXPECT_GE(max, avg);
  EXPECT_DOUBLE_EQ(index.MaxScore("missing"), 0.0);
  EXPECT_DOUBLE_EQ(index.AvgScore("missing"), 0.0);
}

TEST(InvertedIndexTest, DocIdsForMatchesPostings) {
  InvertedIndex index = InvertedIndex::Build(SmallCorpus());
  auto ids = index.DocIdsFor("banana");
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_TRUE((ids[0] == 1 && ids[1] == 3) || (ids[0] == 3 && ids[1] == 1));
  EXPECT_TRUE(index.DocIdsFor("missing").empty());
}

TEST(InvertedIndexTest, NormalizedScoresInUnitInterval) {
  InvertedIndex index = InvertedIndex::Build(SmallCorpus());
  auto scores = index.NormalizedScoresFor("apple");
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_DOUBLE_EQ(scores[0], 1.0);  // top of list
  EXPECT_GT(scores[1], 0.0);
  EXPECT_LE(scores[1], 1.0);
}

TEST(InvertedIndexTest, Bm25ModelProducesScores) {
  ScoringModel model;
  model.function = ScoringFunction::kBm25;
  InvertedIndex index = InvertedIndex::Build(SmallCorpus(), model);
  EXPECT_GT(index.MaxScore("apple"), 0.0);
  // tf=2 in a longer doc still beats tf=1.
  const auto* apple = index.postings("apple");
  EXPECT_EQ((*apple)[0].doc, 1u);
}

TEST(InvertedIndexTest, EmptyIndex) {
  InvertedIndex index;
  EXPECT_EQ(index.NumTerms(), 0u);
  EXPECT_EQ(index.NumDocuments(), 0u);
  EXPECT_EQ(index.postings("x"), nullptr);
}

TEST(InvertedIndexTest, RareTermScoresAboveCommonTerm) {
  // idf: a term in 1 of 100 docs must outscore (per occurrence) a term in
  // all 100 docs.
  Corpus corpus;
  for (DocId d = 0; d < 100; ++d) {
    std::vector<std::string> terms = {"common"};
    if (d == 0) terms.push_back("rare");
    ASSERT_TRUE(corpus.AddDocumentTerms(d + 1, terms).ok());
  }
  InvertedIndex index = InvertedIndex::Build(corpus);
  EXPECT_GT(index.MaxScore("rare"), index.MaxScore("common"));
}

}  // namespace
}  // namespace iqn

#include "ir/corpus.h"

#include <gtest/gtest.h>

namespace iqn {
namespace {

TEST(CorpusTest, AddDocumentTermsAndLookup) {
  Corpus corpus;
  ASSERT_TRUE(corpus.AddDocumentTerms(1, {"alpha", "beta"}).ok());
  ASSERT_TRUE(corpus.AddDocumentTerms(2, {"beta"}).ok());
  EXPECT_EQ(corpus.size(), 2u);
  EXPECT_TRUE(corpus.ContainsDoc(1));
  EXPECT_TRUE(corpus.ContainsDoc(2));
  EXPECT_FALSE(corpus.ContainsDoc(3));
  EXPECT_EQ(corpus.doc(0).terms.size(), 2u);
}

TEST(CorpusTest, DuplicateDocIdRejected) {
  Corpus corpus;
  ASSERT_TRUE(corpus.AddDocumentTerms(1, {"a1"}).ok());
  EXPECT_EQ(corpus.AddDocumentTerms(1, {"b2"}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(corpus.size(), 1u);
}

TEST(CorpusTest, AddDocumentTextRunsAnalysisChain) {
  Corpus corpus;
  Tokenizer tok;
  ASSERT_TRUE(corpus.AddDocumentText(7, "The Forest FIRES!", tok).ok());
  ASSERT_EQ(corpus.size(), 1u);
  // "the" removed, lowercased, stemmed.
  ASSERT_EQ(corpus.doc(0).terms.size(), 2u);
  EXPECT_EQ(corpus.doc(0).terms[0], "forest");
  EXPECT_EQ(corpus.doc(0).terms[1], "fire");
}

TEST(CorpusTest, AverageDocumentLength) {
  Corpus corpus;
  EXPECT_DOUBLE_EQ(corpus.AverageDocumentLength(), 0.0);
  ASSERT_TRUE(corpus.AddDocumentTerms(1, {"aa", "bb"}).ok());
  ASSERT_TRUE(corpus.AddDocumentTerms(2, {"aa", "bb", "cc", "dd"}).ok());
  EXPECT_DOUBLE_EQ(corpus.AverageDocumentLength(), 3.0);
}

TEST(CorpusTest, MergeDeduplicatesByDocId) {
  Corpus a, b;
  ASSERT_TRUE(a.AddDocumentTerms(1, {"x1"}).ok());
  ASSERT_TRUE(a.AddDocumentTerms(2, {"x2"}).ok());
  ASSERT_TRUE(b.AddDocumentTerms(2, {"x2"}).ok());
  ASSERT_TRUE(b.AddDocumentTerms(3, {"x3"}).ok());
  a.Merge(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_TRUE(a.ContainsDoc(3));
  // Merging again changes nothing.
  a.Merge(b);
  EXPECT_EQ(a.size(), 3u);
}

TEST(CorpusTest, MergeIntoEmpty) {
  Corpus a, b;
  ASSERT_TRUE(b.AddDocumentTerms(5, {"zz"}).ok());
  a.Merge(b);
  EXPECT_EQ(a.size(), 1u);
}

}  // namespace
}  // namespace iqn

// Quickstart: the smallest end-to-end use of the library.
//
// Builds a 6-peer MINERVA network over a synthetic corpus with
// overlapping collections, publishes synopses to the Chord-based
// directory, routes one query with IQN, and prints what happened.
// Everything goes through the minerva::Engine facade (minerva/api.h).

#include <cstdio>

#include "minerva/api.h"
#include "workload/fragments.h"
#include "workload/queries.h"
#include "workload/synthetic_corpus.h"

int main() {
  using namespace iqn;

  // 1. A synthetic web-like corpus (Zipfian term distribution).
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_documents = 1200;
  corpus_options.vocabulary_size = 300;
  corpus_options.seed = 7;
  auto generator = SyntheticCorpusGenerator::Create(corpus_options);
  if (!generator.ok()) return 1;
  Corpus corpus = generator.value().Generate();

  // 2. Partition into overlapping peer collections: 12 fragments, each
  //    peer holds a 4-fragment window shifted by 2 — adjacent peers share
  //    half their documents, like real crawlers chasing popular pages.
  auto fragments = SplitIntoFragments(corpus, 12);
  auto collections =
      SlidingWindowCollections(fragments.value(), /*window=*/4, /*offset=*/2,
                               /*num_peers=*/6);
  if (!collections.ok()) return 1;

  // 3. Assemble the engine: simulated network, Chord ring, directory,
  //    one peer per collection. Defaults: IQN routing, 64 min-wise
  //    permutations (2048 bits) per term.
  minerva::EngineOptions options;
  options.max_peers = 3;
  auto engine = minerva::Engine::Create(options,
                                        std::move(collections).value());
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  // 4. Every peer posts <term statistics + synopsis> for each of its
  //    terms to the distributed directory.
  if (Status st = engine.value()->Publish(); !st.ok()) {
    std::fprintf(stderr, "publish: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("directory populated: %llu bytes of posts shipped over the "
              "simulated network\n",
              static_cast<unsigned long long>(
                  engine.value()->TotalBytesSent()));

  // 5. Route a 2-keyword query from peer 0 to the 3 most promising peers
  //    using IQN (quality x novelty, iteratively re-estimated).
  QueryWorkloadOptions query_options;
  query_options.num_queries = 1;
  query_options.k = 20;
  auto queries =
      GenerateQueries(generator.value().vocabulary(), query_options);
  if (!queries.ok()) return 1;
  const Query& query = queries.value()[0];

  QueryOutcome outcome;
  if (Status st = engine.value()->RunQuery(/*initiator=*/0, query, &outcome);
      !st.ok()) {
    std::fprintf(stderr, "query: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("\nquery %s routed by %s\n", query.ToString().c_str(),
              minerva::RouterKindName(options.routing.kind));
  for (const SelectedPeer& peer : outcome.decision.peers) {
    std::printf("  -> peer %llu  (CORI quality %.3f, estimated novelty "
                "%.0f docs)\n",
                static_cast<unsigned long long>(peer.peer_id), peer.quality,
                peer.novelty);
  }
  std::printf("\ntop results (docId, score):\n");
  size_t shown = 0;
  for (const ScoredDoc& doc : outcome.execution.merged) {
    std::printf("  #%zu  doc %llu  %.3f\n", ++shown,
                static_cast<unsigned long long>(doc.doc), doc.score);
    if (shown == 5) break;
  }
  std::printf(
      "\nrecall vs a centralized engine over ALL collections: %.0f%%\n"
      "(routing cost: %llu directory messages, query execution: %llu "
      "messages)\n",
      outcome.recall * 100.0,
      static_cast<unsigned long long>(outcome.routing_messages),
      static_cast<unsigned long long>(outcome.execution_messages));
  return 0;
}

// Network monitoring (mentioned in Sec. 1.1 alongside P2P sensor
// networks): distributed monitors each observe a stream of events —
// alerts, flows, incidents — with heavy duplication, because the same
// incident is seen from many vantage points.
//
// An analyst asks "give me incidents matching <filter>" and can afford to
// pull from only a few monitors. Quality-driven selection polls the big
// monitors, which all saw the same backbone incidents; novelty-aware IQN
// spends the same budget collecting *distinct* incidents, including the
// ones only an edge monitor recorded.

#include <cstdio>
#include <string>
#include <vector>

#include "minerva/api.h"
#include "util/hash.h"
#include "util/random.h"

int main() {
  using namespace iqn;

  constexpr size_t kCoreMonitors = 5;   // see everything on the backbone
  constexpr size_t kEdgeMonitors = 10;  // each sees its own site
  constexpr DocId kBackboneIncidents = 300;
  constexpr DocId kSitePerEdge = 60;

  auto incident_attributes = [](DocId id) {
    std::vector<std::string> attrs;
    attrs.push_back(Hash64(id, 1) % 4 == 0 ? "severity:critical"
                                           : "severity:warning");
    attrs.push_back(Hash64(id, 2) % 3 == 0 ? "proto:dns" : "proto:tcp");
    attrs.push_back("type:portscan");
    return attrs;
  };

  std::vector<Corpus> collections(kCoreMonitors + kEdgeMonitors);
  Rng rng(5);
  // Backbone incidents: every core monitor logs ~90 % of them.
  for (DocId id = 1; id <= kBackboneIncidents; ++id) {
    for (size_t m = 0; m < kCoreMonitors; ++m) {
      if (rng.Bernoulli(0.9)) {
        (void)collections[m].AddDocumentTerms(id, incident_attributes(id));
      }
    }
  }
  // Site-local incidents: seen by exactly one edge monitor (plus, for a
  // third of them, one core monitor that happened to route the flow).
  for (size_t e = 0; e < kEdgeMonitors; ++e) {
    DocId base = 10000 + static_cast<DocId>(e) * 1000;
    for (DocId id = base; id < base + kSitePerEdge; ++id) {
      (void)collections[kCoreMonitors + e].AddDocumentTerms(
          id, incident_attributes(id));
      if (rng.Bernoulli(0.33)) {
        size_t core = rng.Uniform(kCoreMonitors);
        (void)collections[core].AddDocumentTerms(id,
                                                 incident_attributes(id));
      }
    }
  }

  auto engine =
      minerva::Engine::Create(minerva::EngineOptions{}, std::move(collections));
  if (!engine.ok()) return 1;
  if (!engine.value()->Publish().ok()) return 1;

  Query query;
  query.terms = {"severity:critical", "type:portscan"};
  query.mode = QueryMode::kConjunctive;
  query.k = 1000;  // the analyst wants every matching incident

  auto reference = engine.value()->ReferenceResults(query);
  std::printf(
      "NETWORK MONITORING: %zu core + %zu edge monitors\n"
      "query: critical portscan incidents — %zu distinct across the "
      "network\n\n",
      kCoreMonitors, kEdgeMonitors, reference.size());

  minerva::RoutingSpec cori;
  cori.kind = minerva::RouterKind::kCori;
  minerva::RoutingSpec iqn;  // defaults to kIqn
  iqn.iqn.use_quality = false;

  std::printf("%-8s %28s %28s\n", "budget", "CORI (quality-driven)",
              "IQN (novelty-aware)");
  for (size_t budget : {2u, 4u, 8u}) {
    QueryOutcome cori_outcome;
    QueryOutcome iqn_outcome;
    if (!engine.value()
             ->RunQueryWith(cori, 0, query, budget, &cori_outcome)
             .ok() ||
        !engine.value()
             ->RunQueryWith(iqn, 0, query, budget, &iqn_outcome)
             .ok()) {
      return 1;
    }
    auto fmt = [&](const QueryOutcome& outcome) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%3zu incidents (%4.1f%% cover)",
                    outcome.distinct_results,
                    reference.empty()
                        ? 0.0
                        : 100.0 * outcome.recall /* union incl. initiator */);
      return std::string(buf);
    };
    std::printf("%-8zu %28s %28s\n", budget, fmt(cori_outcome).c_str(),
                fmt(iqn_outcome).c_str());
  }
  std::printf(
      "\nwith the same polling budget, the novelty-aware plan surfaces the\n"
      "site-local incidents the big backbone monitors never saw.\n");
  return 0;
}

// File sharing (the paper's introduction example, Sec. 1.1):
//
//   "Consider a single-attribute query for all songs by Mikis
//    Theodorakis. If every selected peer contributes its best matches
//    only, the query result will most likely contain many duplicates of
//    popular songs, when instead users would have preferred a much
//    larger variety of songs from the same number of peers."
//
// Files are documents whose "terms" are attribute values
// (composer:theodorakis, genre:opera, format:mp3). The network has two
// kinds of peers:
//  * 6 mainstream peers: everyone's chart hits (heavily replicated) and
//    hardly anything else — the biggest collections, so quality-driven
//    selection loves them;
//  * 6 archive peers: fewer files overall, but each holds a unique trove
//    of rare recordings.
// In the DB-style structured-query setting every match is equally good,
// so IQN runs in novelty-only mode (use_quality = false) and is compared
// against CORI.

#include <cstdio>
#include <string>
#include <vector>

#include "minerva/api.h"
#include "util/hash.h"

int main() {
  using namespace iqn;

  constexpr DocId kHits = 90;        // replicated everywhere
  constexpr DocId kRarePerPeer = 40; // unique per archive peer

  auto song_attributes = [](DocId id) {
    std::vector<std::string> attrs = {"format:mp3"};
    attrs.push_back(Hash64(id, 1) % 3 == 0 ? "composer:theodorakis"
                                           : "composer:hadjidakis");
    attrs.push_back(Hash64(id, 2) % 2 == 0 ? "genre:opera"
                                           : "genre:rebetiko");
    return attrs;
  };

  std::vector<Corpus> collections(12);
  // Mainstream peers 0..5: all hits + a handful of shared extras.
  for (size_t p = 0; p < 6; ++p) {
    for (DocId song = 1; song <= kHits; ++song) {
      (void)collections[p].AddDocumentTerms(song, song_attributes(song));
    }
    for (DocId song = 100 + p * 3; song < 100 + p * 3 + 6; ++song) {
      (void)collections[p].AddDocumentTerms(song, song_attributes(song));
    }
  }
  // Archive peers 6..11: a third of the hits + a unique trove each.
  for (size_t p = 6; p < 12; ++p) {
    for (DocId song = 1; song <= kHits / 3; ++song) {
      (void)collections[p].AddDocumentTerms(song, song_attributes(song));
    }
    DocId base = 1000 + static_cast<DocId>(p) * 1000;
    for (DocId song = base; song < base + kRarePerPeer; ++song) {
      (void)collections[p].AddDocumentTerms(song, song_attributes(song));
    }
  }

  auto engine =
      minerva::Engine::Create(minerva::EngineOptions{}, std::move(collections));
  if (!engine.ok()) return 1;
  if (!engine.value()->Publish().ok()) return 1;

  // Conjunctive attribute query: all Theodorakis operas ("top-k" with a
  // large k = give me everything you have).
  Query query;
  query.terms = {"composer:theodorakis", "genre:opera"};
  query.mode = QueryMode::kConjunctive;
  query.k = 500;

  std::printf(
      "FILE SHARING: 6 mainstream peers (hit collections, replicated\n"
      "everywhere) + 6 archive peers (small but unique troves)\n");
  std::printf("query: every song with composer:theodorakis AND "
              "genre:opera\n\n");

  auto reference = engine.value()->ReferenceResults(query);
  std::printf("the whole network holds %zu distinct matching songs\n\n",
              reference.size());

  minerva::RoutingSpec cori;
  cori.kind = minerva::RouterKind::kCori;
  minerva::RoutingSpec iqn;  // defaults to kIqn
  iqn.iqn.use_quality = false;  // all matches equally good: DB-style

  auto archives_in = [](const RoutingDecision& decision) {
    size_t archives = 0;
    for (const auto& peer : decision.peers) {
      if (peer.peer_id >= 6) ++archives;
    }
    return archives;
  };

  for (size_t budget : {2u, 4u, 6u}) {
    QueryOutcome cori_outcome;
    QueryOutcome iqn_outcome;
    if (!engine.value()
             ->RunQueryWith(cori, 0, query, budget, &cori_outcome)
             .ok() ||
        !engine.value()
             ->RunQueryWith(iqn, 0, query, budget, &iqn_outcome)
             .ok()) {
      std::fprintf(stderr, "query failed\n");
      return 1;
    }
    std::printf(
        "budget %zu peers:  CORI -> %3zu distinct songs (%zu archives "
        "visited, %4.1f%% dupes)\n",
        budget, cori_outcome.distinct_results,
        archives_in(cori_outcome.decision),
        cori_outcome.duplicate_fraction * 100.0);
    std::printf(
        "                   IQN  -> %3zu distinct songs (%zu archives "
        "visited, %4.1f%% dupes)\n",
        iqn_outcome.distinct_results, archives_in(iqn_outcome.decision),
        iqn_outcome.duplicate_fraction * 100.0);
  }

  std::printf(
      "\nCORI keeps picking the big mainstream peers that all share the\n"
      "same hits; novelty-only IQN hops to the archives that still hold\n"
      "unseen recordings — the 'much larger variety of songs from the\n"
      "same number of peers' the paper promises.\n");
  return 0;
}

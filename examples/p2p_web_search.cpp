// P2P Web search (the paper's primary scenario, Sec. 1.1).
//
// 20 peers autonomously "crawl" an overlapping portion of the web — the
// (6 choose 3) setup, where every document is replicated at 10 of the 20
// peers. The example runs the same multi-keyword queries through the
// quality-only CORI router and through IQN, showing selection-by-
// selection why CORI wastes its peer budget on redundant collections and
// IQN does not.
//
// All engine configuration comes from the standard flag set
// (minerva::EngineOptions::RegisterFlags / FromFlags); this file only
// adds --explain.

#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "minerva/api.h"
#include "util/flags.h"
#include "workload/fragments.h"
#include "workload/queries.h"
#include "workload/synthetic_corpus.h"

namespace {

void Report(const char* label, const iqn::QueryOutcome& outcome) {
  std::printf("  %s selected:", label);
  for (const auto& peer : outcome.decision.peers) {
    std::printf(" p%llu", static_cast<unsigned long long>(peer.peer_id));
  }
  std::printf("\n");
  for (const auto& peer : outcome.decision.peers) {
    std::printf("      p%-3llu quality=%.3f novelty=%6.0f\n",
                static_cast<unsigned long long>(peer.peer_id), peer.quality,
                peer.novelty);
  }
  std::printf(
      "      recall=%5.1f%%  duplicates among returned results=%4.1f%%  "
      "distinct docs=%zu\n",
      outcome.recall_remote_only * 100.0, outcome.duplicate_fraction * 100.0,
      outcome.distinct_results);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iqn;

  Flags flags;
  minerva::EngineOptions::RegisterFlags(&flags);
  flags.DefineBool("explain", false,
                   "print the per-iteration IQN routing explanation "
                   "(Select-Best-Peer ranking tables) for each query");
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const bool explain = flags.GetBool("explain");

  auto options_r = minerva::EngineOptions::FromFlags(flags);
  if (!options_r.ok()) {
    std::fprintf(stderr, "%s\n", options_r.status().ToString().c_str());
    return 1;
  }
  minerva::EngineOptions options = std::move(options_r).value();
  // Explanations are reconstructed from the query trace, so either sink
  // flag or --explain turns tracing on.
  options.core.collect_traces |= explain || !options.metrics_out.empty();

  // Corpus and the paper's (6 choose 3) overlapping partitioning.
  SyntheticCorpusOptions corpus_options;
  corpus_options.num_documents = 3000;
  corpus_options.vocabulary_size = 500;
  corpus_options.seed = 11;
  auto generator = SyntheticCorpusGenerator::Create(corpus_options);
  if (!generator.ok()) return 1;
  Corpus corpus = generator.value().Generate();
  auto fragments = SplitIntoFragments(corpus, 6);
  auto collections = ChooseCombinationCollections(fragments.value(), 3);
  if (!collections.ok()) return 1;

  std::printf(
      "P2P WEB SEARCH: 20 peers, each holding 3 of 6 crawl fragments\n"
      "(every document lives at exactly 10 peers -> heavy overlap)\n\n");

  auto engine =
      minerva::Engine::Create(options, std::move(collections).value());
  if (!engine.ok()) return 1;
  if (!engine.value()->Publish().ok()) return 1;
  // Snapshot only the query phase, not the publish traffic above.
  engine.value()->ResetMetrics();

  QueryWorkloadOptions query_options;
  query_options.num_queries = 3;
  query_options.band_low = 0.01;
  query_options.band_high = 0.2;
  query_options.k = 40;
  query_options.seed = 3;
  auto queries =
      GenerateQueries(generator.value().vocabulary(), query_options);
  if (!queries.ok()) return 1;

  minerva::RoutingSpec cori;
  cori.kind = minerva::RouterKind::kCori;
  minerva::RoutingSpec iqn_spec;  // defaults to kIqn
  constexpr size_t kPeerBudget = 3;

  for (const Query& query : queries.value()) {
    std::printf("query %s, budget %zu peers\n", query.ToString().c_str(),
                kPeerBudget);
    QueryOutcome cori_outcome;
    QueryOutcome iqn_outcome;
    if (!engine.value()
             ->RunQueryWith(cori, 0, query, kPeerBudget, &cori_outcome)
             .ok() ||
        !engine.value()
             ->RunQueryWith(iqn_spec, 0, query, kPeerBudget, &iqn_outcome)
             .ok()) {
      return 1;
    }
    Report("CORI", cori_outcome);
    Report("IQN ", iqn_outcome);
    if (explain) {
      std::string text;
      if (Status st = engine.value()->Explain(iqn_outcome, &text); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("%s", text.c_str());
    }

    // How complementary were the selections? Count distinct fragments
    // covered (peer p holds the p-th 3-subset of {0..5}).
    auto fragment_cover = [](const RoutingDecision& decision) {
      auto subsets = Combinations(6, 3);
      std::set<size_t> covered;
      for (const auto& peer : decision.peers) {
        for (size_t f : subsets[peer.peer_id]) covered.insert(f);
      }
      return covered.size();
    };
    std::printf("      crawl fragments covered: CORI %zu/6, IQN %zu/6\n\n",
                fragment_cover(cori_outcome.decision),
                fragment_cover(iqn_outcome.decision));
  }

  std::printf(
      "IQN covers more distinct crawl fragments with the same number of\n"
      "peers because each Select-Best-Peer step discounts documents the\n"
      "previously chosen peers already contribute (Aggregate-Synopses).\n");

  if (Status st = engine.value()->WriteSinks(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (!options.trace_out.empty()) {
    std::printf("wrote %s\n", options.trace_out.c_str());
  }
  if (!options.metrics_out.empty()) {
    std::printf("wrote %s\n", options.metrics_out.c_str());
  }
  return 0;
}

// Tour of the synopsis layer — the library below the P2P engine.
//
// Shows, for each synopsis type, how to summarize a docId set, estimate
// cardinality/resemblance/overlap/novelty, combine synopses, and ship
// them over the wire — everything a peer does when it publishes and a
// query initiator does when it routes.

#include <cstdio>

#include "synopses/bloom_filter.h"
#include "synopses/estimators.h"
#include "synopses/hash_sketch.h"
#include "synopses/loglog.h"
#include "synopses/min_wise.h"
#include "synopses/reference_synopsis.h"
#include "synopses/serialization.h"

int main() {
  using namespace iqn;

  // Two overlapping document sets: A = 0..5999, B = 4000..9999
  // (true overlap 2000, union 10000, resemblance 0.2, novelty(B|A) 4000).
  auto fill = [](SetSynopsis* synopsis, DocId lo, DocId hi) {
    for (DocId id = lo; id < hi; ++id) synopsis->Add(id);
  };

  std::printf("ground truth: |A|=6000 |B|=6000 overlap=2000 "
              "resemblance=0.200 novelty(B|A)=4000\n\n");
  std::printf("%-22s %10s %12s %10s %12s %10s\n", "synopsis (2048 bits)",
              "|A| est.", "resemblance", "overlap", "novelty", "wire B");

  // All peers agree on one hash-family seed: the single global parameter
  // MIPs need (Sec. 5.3).
  UniversalHashFamily family(42);

  auto report = [&](const char* label, std::unique_ptr<SetSynopsis> a,
                    std::unique_ptr<SetSynopsis> b) {
    fill(a.get(), 0, 6000);
    fill(b.get(), 4000, 10000);
    double card = a->EstimateCardinality();
    auto resemblance = a->EstimateResemblance(*b);
    auto overlap = EstimateOverlap(*a, 6000, *b, 6000);
    auto novelty = EstimateNovelty(*a, 6000, *b, 6000);
    Bytes wire = SerializeSynopsisToBytes(*a);
    std::printf("%-22s %10.0f %12.3f %10.0f %12.0f %10zu\n", label, card,
                resemblance.ok() ? resemblance.value() : -1.0,
                overlap.ok() ? overlap.value() : -1.0,
                novelty.ok() ? novelty.value() : -1.0, wire.size());
  };

  {
    auto a = MinWiseSynopsis::Create(64, family);
    auto b = MinWiseSynopsis::Create(64, family);
    report("min-wise (64 perms)",
           std::make_unique<MinWiseSynopsis>(std::move(a).value()),
           std::make_unique<MinWiseSynopsis>(std::move(b).value()));
  }
  {
    auto a = BloomFilter::Create(2048, 4, 42);
    auto b = BloomFilter::Create(2048, 4, 42);
    report("Bloom filter (2048b)",
           std::make_unique<BloomFilter>(std::move(a).value()),
           std::make_unique<BloomFilter>(std::move(b).value()));
  }
  {
    auto a = HashSketch::Create(32, 64, 42);
    auto b = HashSketch::Create(32, 64, 42);
    report("hash sketch (32x64)",
           std::make_unique<HashSketch>(std::move(a).value()),
           std::make_unique<HashSketch>(std::move(b).value()));
  }
  {
    auto a = LogLogCounter::Create(256, 42);
    auto b = LogLogCounter::Create(256, 42);
    report("super-LogLog (256)",
           std::make_unique<LogLogCounter>(std::move(a).value()),
           std::make_unique<LogLogCounter>(std::move(b).value()));
  }

  std::printf(
      "\n(the 2048-bit Bloom filter is already overloaded by 6000-element "
      "sets — the Figure 2 effect; MIPs stay accurate)\n");

  // The IQN loop in miniature: a reference synopsis absorbing peers.
  std::printf("\nIQN reference-synopsis loop (min-wise):\n");
  auto seed = MinWiseSynopsis::Create(64, family);
  auto reference = ReferenceSynopsis::Create(
      std::make_unique<MinWiseSynopsis>(std::move(seed).value()), 0.0);
  DocId next = 0;
  for (int step = 1; step <= 3; ++step) {
    auto peer_synopsis = MinWiseSynopsis::Create(64, family);
    // Each peer: 1000 new docs + 1000 docs the reference already covers.
    auto syn = std::make_unique<MinWiseSynopsis>(std::move(peer_synopsis).value());
    DocId overlap_lo = next >= 1000 ? next - 1000 : 0;
    fill(syn.get(), overlap_lo, next + 1000);
    next += 1000;
    auto credited = reference.value().Absorb(*syn, 2000);
    std::printf("  absorb peer %d: credited novelty %6.0f, covered space "
                "now ~%6.0f docs\n",
                step, credited.ok() ? credited.value() : -1.0,
                reference.value().estimated_cardinality());
  }

  // Heterogeneous MIPs lengths: a space-constrained peer posts 16
  // permutations, a generous one 64 — they still interoperate.
  auto small = MinWiseSynopsis::Create(16, family);
  auto large = MinWiseSynopsis::Create(64, family);
  fill(&small.value(), 0, 3000);
  fill(&large.value(), 1500, 4500);
  auto r = large.value().EstimateResemblance(small.value());
  std::printf(
      "\nheterogeneous lengths: 64-perm vs 16-perm synopsis -> resemblance "
      "%.3f estimated over the common 16-permutation prefix (truth 0.333)\n",
      r.ok() ? r.value() : -1.0);
  return 0;
}

// ABL-DIR — directory cost engineering (paper Sec. 4 + Sec. 7.2):
//
//  1. Posting: "peers should batch multiple posts that are directed to
//     the same recipient" — measures the publishing traffic of per-term
//     posting vs per-directory-node batching.
//  2. Routing: "the query initiator can decide to not retrieve the
//     complete PeerLists, but only a subset, say the top-k peers from
//     each list" — sweeps the PeerList truncation limit and reports the
//     routing bandwidth saved vs the recall given up.
//
// Usage: ablation_directory [--docs=4000] [--queries=8] [--peers=4]

#include <cstdio>
#include <vector>

#include "minerva/api.h"
#include "util/bench_report.h"
#include "util/flags.h"
#include "util/json_value.h"
#include "workload/fragments.h"
#include "workload/queries.h"
#include "workload/synthetic_corpus.h"

namespace iqn {
namespace {

std::vector<Corpus> MakeCollections(const Corpus& corpus) {
  auto frags = SplitIntoFragments(corpus, 60);
  auto collections = SlidingWindowCollections(frags.value(), 6, 2, 30);
  return std::move(collections).value();
}

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("docs", 4000, "corpus size");
  flags.DefineInt("queries", 8, "number of queries");
  flags.DefineInt("peers", 4, "routed peers per query");
  flags.DefineInt("seed", 42, "workload seed");
  flags.DefineString("out", "BENCH_ablation_directory.json",
                     "bench report JSON path");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 1;
  }
  size_t docs = static_cast<size_t>(flags.GetInt("docs"));
  size_t num_queries = static_cast<size_t>(flags.GetInt("queries"));
  size_t max_peers = static_cast<size_t>(flags.GetInt("peers"));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));

  SyntheticCorpusOptions corpus_opts;
  corpus_opts.num_documents = docs;
  corpus_opts.vocabulary_size = docs / 8;
  corpus_opts.seed = seed;
  auto gen = SyntheticCorpusGenerator::Create(corpus_opts);
  if (!gen.ok()) return 1;
  Corpus corpus = gen.value().Generate();

  QueryWorkloadOptions q_opts;
  q_opts.num_queries = num_queries;
  q_opts.band_low = 0.005;
  q_opts.band_high = 0.08;
  q_opts.seed = seed + 1;
  auto queries = GenerateQueries(gen.value().vocabulary(), q_opts);
  if (!queries.ok()) return 1;

  // ---------------- Part 1: batched posting -------------------------
  std::printf("\n=== Directory cost (Sec. 7.2): per-term posts vs batched "
              "posts ===\n");
  std::printf("(%zu docs, 30 peers, MIPs-64 posts)\n\n", docs);
  std::printf("%-26s %14s %14s\n", "publishing", "messages", "bytes");
  struct PublishVariant {
    const char* label;
    bool batched;
    SynopsisType type;
    bool compress;
  };
  const PublishVariant publish_variants[] = {
      {"MIPs, one post per term", false, SynopsisType::kMinWise, false},
      {"MIPs, batched by node", true, SynopsisType::kMinWise, false},
      {"BF, raw wire image", true, SynopsisType::kBloomFilter, false},
      {"BF, Golomb-Rice [26]", true, SynopsisType::kBloomFilter, true},
  };
  std::vector<JsonValue> publish_rows;
  for (const PublishVariant& variant : publish_variants) {
    minerva::EngineOptions options;
    options.core.batch_posting = variant.batched;
    options.core.synopsis.type = variant.type;
    options.core.synopsis.compress_bloom = variant.compress;
    auto engine = minerva::Engine::Create(options, MakeCollections(corpus));
    if (!engine.ok()) return 1;
    if (!engine.value()->Publish().ok()) return 1;
    const NetworkStats& stats = engine.value()->network().stats();
    std::printf("%-26s %14llu %14llu\n", variant.label,
                static_cast<unsigned long long>(stats.messages),
                static_cast<unsigned long long>(stats.bytes));
    publish_rows.push_back(JsonValue::Object(
        {{"publishing", JsonValue::String(variant.label)},
         {"messages",
          JsonValue::Number(static_cast<double>(stats.messages))},
         {"bytes", JsonValue::Number(static_cast<double>(stats.bytes))}}));
  }

  // ---------------- Part 2: truncated PeerLists ---------------------
  std::printf("\n=== Directory cost (Sec. 4): truncated PeerList retrieval "
              "===\n");
  std::printf("(%zu queries, IQN with %zu routed peers; bytes are the "
              "routing phase only)\n\n",
              num_queries, max_peers);
  std::printf("%-20s %14s %10s\n", "candidate fetch", "routing bytes",
              "recall");

  struct FetchStrategy {
    std::string label;
    size_t peerlist_limit = 0;
    size_t topk_candidates = 0;
  };
  const FetchStrategy strategies[] = {
      {"full PeerLists", 0, 0},
      {"top-20 per list", 20, 0},
      {"top-10 per list", 10, 0},
      {"top-5 per list", 5, 0},
      {"TPUT top-10 overall", 0, 10},  // Sec. 4's "top-k peers over all
                                       // lists" via the distributed
                                       // threshold algorithm
  };
  std::vector<JsonValue> fetch_rows;
  for (const FetchStrategy& strategy : strategies) {
    minerva::EngineOptions options;
    options.core.peerlist_limit = strategy.peerlist_limit;
    options.core.distributed_topk_candidates = strategy.topk_candidates;
    auto engine = minerva::Engine::Create(options, MakeCollections(corpus));
    if (!engine.ok()) return 1;
    if (!engine.value()->Publish().ok()) return 1;

    minerva::RoutingSpec routing;  // kIqn
    double recall = 0.0;
    uint64_t routing_bytes = 0;
    size_t counted = 0;
    for (size_t qi = 0; qi < queries.value().size(); ++qi) {
      QueryOutcome outcome;
      if (!engine.value()
               ->RunQueryWith(routing, qi % engine.value()->num_peers(),
                              queries.value()[qi], max_peers, &outcome)
               .ok()) {
        continue;
      }
      recall += outcome.recall_remote_only;
      routing_bytes += outcome.routing_bytes;
      ++counted;
    }
    if (counted > 0) {
      recall /= static_cast<double>(counted);
      routing_bytes /= counted;
    }
    std::printf("%-20s %14llu %9.1f%%\n", strategy.label.c_str(),
                static_cast<unsigned long long>(routing_bytes),
                recall * 100.0);
    fetch_rows.push_back(JsonValue::Object(
        {{"candidate_fetch", JsonValue::String(strategy.label)},
         {"routing_bytes",
          JsonValue::Number(static_cast<double>(routing_bytes))},
         {"recall", JsonValue::Number(recall)}}));
  }
  std::printf(
      "\n(truncation cuts routing bandwidth several-fold; because the "
      "directory ranks by index list length, a moderate limit also acts "
      "as a quality prefilter and costs little or no recall — only "
      "overly aggressive limits would remove the complementary small "
      "peers IQN needs)\n");

  BenchReport report(
      "ablation_directory",
      JsonValue::Object(
          {{"docs", JsonValue::Number(static_cast<double>(docs))},
           {"queries",
            JsonValue::Number(static_cast<double>(num_queries))},
           {"peers", JsonValue::Number(static_cast<double>(max_peers))},
           {"seed", JsonValue::Number(static_cast<double>(seed))}}));
  report.AddSection(
      "results",
      JsonValue::Object(
          {{"publishing", JsonValue::Array(std::move(publish_rows))},
           {"peerlist_truncation", JsonValue::Array(std::move(fetch_rows))}}));
  const std::string& out = flags.GetString("out");
  if (Status w = report.WriteFile(out); !w.ok()) {
    std::fprintf(stderr, "%s\n", w.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace iqn

int main(int argc, char** argv) { return iqn::Main(argc, argv); }

// BENCH-ADV: recall under claim-inflating adversaries, with and
// without the reputation defense.
//
// Sweeps the adversarial-peer fraction over the Fig. 3-style workload
// and runs every point twice through the scenario harness
// (minerva/scenario.h): once unprotected and once with the
// claim-vs-observed reputation discount enabled. Each point streams the
// query pool for several rounds on the SAME engine so the defense can
// learn; per-round recall shows the convergence. Every point is also
// executed twice end to end and the two runs' result fingerprints must
// agree — the sweep is bit-reproducible by construction.
//
// The ISSUE acceptance bound is checked at exit: at a 20% inflating
// fraction the defended final-round recall must recover at least half
// of the recall the unprotected engine lost against the
// adversary-free baseline (non-zero status on violation, so CI can
// gate on it).
//
// Usage: adversary_sweep [--fractions=0,0.1,0.2,0.3] [--rounds=4]
//          [--factor=10] [--out=BENCH_adversary.json]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "minerva/scenario.h"
#include "util/bench_report.h"
#include "util/flags.h"

namespace iqn {
namespace {

std::vector<double> ParseFractions(const std::string& spec) {
  std::vector<double> fractions;
  std::string token;
  auto flush = [&] {
    if (!token.empty()) {
      fractions.push_back(std::strtod(token.c_str(), nullptr));
      token.clear();
    }
  };
  for (char c : spec) {
    if (c == ',') {
      flush();
    } else {
      token.push_back(c);
    }
  }
  flush();
  if (fractions.empty() || fractions.front() != 0.0) {
    fractions.insert(fractions.begin(), 0.0);  // adversary-free baseline
  }
  return fractions;
}

/// The adversary workload as a scenario spec — the same shape the
/// checked-in scenarios/adversary_*.json files canonicalize.
minerva::ScenarioSpec BaseSpec(size_t rounds, double factor) {
  minerva::ScenarioSpec spec;
  spec.name = "adversary_sweep";
  spec.topology.peers = 15;
  spec.engine.retries = 3;
  spec.queries.rounds = rounds;
  spec.adversary.behavior = PeerBehavior::kInflateClaims;
  spec.adversary.inflate_factor = factor;
  return spec;
}

struct SweepPoint {
  double fraction = 0.0;
  bool defended = false;
  size_t adversaries = 0;
  double mean_recall = 0.0;
  double final_round_recall = 0.0;
  std::vector<double> round_recall;
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t result_fingerprint = 0;
};

/// Runs one (fraction, defended) point TWICE on fresh engines and
/// insists the fingerprints match — a cheap, always-on rerun-identity
/// check on every sweep point.
SweepPoint RunPoint(const minerva::ScenarioSpec& base, double fraction,
                    bool defended) {
  minerva::ScenarioSpec spec = base;
  spec.adversary.fraction = fraction;
  spec.reputation.enabled = defended;
  minerva::ScenarioResult result;
  uint64_t rerun_fingerprint = 0;
  for (int pass = 0; pass < 2; ++pass) {
    auto run = minerva::RunScenario(spec);
    if (!run.ok()) {
      std::fprintf(stderr, "scenario (fraction=%.2f defended=%d): %s\n",
                   fraction, defended ? 1 : 0,
                   run.status().ToString().c_str());
      std::exit(1);
    }
    if (pass == 0) {
      result = std::move(run).value();
    } else {
      rerun_fingerprint = run.value().result_fingerprint;
    }
  }
  if (rerun_fingerprint != result.result_fingerprint) {
    std::fprintf(stderr,
                 "FAIL: rerun fingerprint mismatch at fraction=%.2f "
                 "defended=%d (%016llx vs %016llx)\n",
                 fraction, defended ? 1 : 0,
                 static_cast<unsigned long long>(result.result_fingerprint),
                 static_cast<unsigned long long>(rerun_fingerprint));
    std::exit(1);
  }

  SweepPoint point;
  point.fraction = fraction;
  point.defended = defended;
  point.adversaries = result.adversaries.size();
  point.mean_recall = result.mean_recall;
  point.round_recall = result.round_recall;
  point.final_round_recall =
      result.round_recall.empty() ? 0.0 : result.round_recall.back();
  point.messages = result.messages;
  point.bytes = result.bytes;
  point.result_fingerprint = result.result_fingerprint;
  return point;
}

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineString("fractions", "0,0.1,0.2,0.3",
                     "comma-separated adversarial peer fractions; 0 is "
                     "prepended if absent (honest baseline)");
  flags.DefineInt("rounds", 4,
                  "query-pool repetitions per point (reputation learns "
                  "across rounds)");
  flags.DefineDouble("factor", 10.0,
                     "posted list-length inflation factor of adversaries");
  flags.DefineString("out", "BENCH_adversary.json", "output JSON path");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 1;
  }
  std::vector<double> fractions = ParseFractions(flags.GetString("fractions"));
  const size_t rounds = static_cast<size_t>(flags.GetInt("rounds"));
  const double factor = flags.GetDouble("factor");
  const std::string out_path = flags.GetString("out");
  const minerva::ScenarioSpec base = BaseSpec(rounds, factor);

  std::printf("adversary_sweep: %zu peers, inflate x%.0f, %zu rounds of "
              "%zu queries, k=%zu\n",
              base.topology.peers, factor, rounds, base.queries.pool,
              base.queries.k);

  std::vector<SweepPoint> points;
  double baseline_recall = 0.0;
  for (double fraction : fractions) {
    for (bool defended : {false, true}) {
      if (fraction == 0.0 && defended) continue;  // no adversaries to judge
      SweepPoint point = RunPoint(base, fraction, defended);
      if (fraction == 0.0) baseline_recall = point.final_round_recall;
      std::printf("  fraction=%.2f %-11s adversaries=%zu  final recall@%zu="
                  "%.4f (mean %.4f)  bytes=%llu\n",
                  point.fraction, defended ? "defended" : "unprotected",
                  point.adversaries, base.queries.k,
                  point.final_round_recall, point.mean_recall,
                  static_cast<unsigned long long>(point.bytes));
      points.push_back(std::move(point));
    }
  }

  // Acceptance: at fraction 0.2 the defense recovers >= half the recall
  // the unprotected engine lost to the adversaries.
  double unprotected_02 = -1.0;
  double defended_02 = -1.0;
  for (const SweepPoint& p : points) {
    if (p.fraction != 0.2) continue;
    (p.defended ? defended_02 : unprotected_02) = p.final_round_recall;
  }
  bool gate_ok = true;
  double recovered_share = 0.0;
  if (unprotected_02 >= 0.0 && defended_02 >= 0.0) {
    const double lost = baseline_recall - unprotected_02;
    recovered_share = lost > 0.0 ? (defended_02 - unprotected_02) / lost : 1.0;
    gate_ok = recovered_share >= 0.5;
    std::printf("gate: fraction=0.20 lost=%.4f recovered=%.4f (%.0f%% of "
                "lost, need >=50%%) -> %s\n",
                lost, defended_02 - unprotected_02, 100.0 * recovered_share,
                gate_ok ? "OK" : "FAIL");
  }

  LegacyReportWriter writer;
  FILE* out = writer.stream();
  if (out == nullptr) {
    std::fprintf(stderr, "cannot buffer bench JSON\n");
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"adversary_sweep\",\n");
  std::fprintf(out,
               "  \"workload\": {\"peers\": %zu, \"queries\": %zu, "
               "\"rounds\": %zu, \"k\": %zu, \"max_peers\": %zu, "
               "\"inflate_factor\": %.1f, \"seed\": %llu},\n",
               base.topology.peers, base.queries.pool, rounds,
               base.queries.k, base.engine.max_peers, factor,
               static_cast<unsigned long long>(base.seed));
  std::fprintf(out,
               "  \"metric_note\": \"each point runs the scenario harness "
               "twice on fresh engines (fingerprints must match); "
               "round_recall shows the reputation defense converging; the "
               "gate requires the defense to recover >= half the recall "
               "lost to a 0.2 inflating fraction\",\n");
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(out,
                 "    {\"fraction\": %.2f, \"defended\": %s, "
                 "\"adversaries\": %zu, \"mean_recall\": %.6f, "
                 "\"final_round_recall\": %.6f, \"round_recall\": [",
                 p.fraction, p.defended ? "true" : "false", p.adversaries,
                 p.mean_recall, p.final_round_recall);
    for (size_t r = 0; r < p.round_recall.size(); ++r) {
      std::fprintf(out, "%s%.6f", r == 0 ? "" : ", ", p.round_recall[r]);
    }
    std::fprintf(out,
                 "], \"messages\": %llu, \"bytes\": %llu, "
                 "\"result_fingerprint\": \"%016llx\"}%s\n",
                 static_cast<unsigned long long>(p.messages),
                 static_cast<unsigned long long>(p.bytes),
                 static_cast<unsigned long long>(p.result_fingerprint),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"gate\": {\"recovered_share\": %.6f, \"pass\": %s}\n",
               recovered_share, gate_ok ? "true" : "false");
  std::fprintf(out, "}\n");
  if (Status w = writer.Finish(out_path); !w.ok()) {
    std::fprintf(stderr, "%s\n", w.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return gate_ok ? 0 : 2;
}

}  // namespace
}  // namespace iqn

int main(int argc, char** argv) { return iqn::Main(argc, argv); }

// ABL-HIST — paper Section 7.1: score-conscious novelty via histograms.
//
// Flat set synopses treat a peer's whole index list as one set, so a peer
// offering many novel *low-scoring* documents looks more attractive than
// one offering fewer novel *top-scoring* documents. Histogram synopses
// weight per-score-cell novelty to prefer the latter.
//
// Constructed workload (explicit term-frequency control):
//  * 200 shared "head" documents (tf = 3 for the query terms), replicated
//    at every peer — the overlap everyone shares;
//  * 10 GOOD peers: head + 200 unique documents with HIGH tf (5..8) —
//    these dominate the centralized top-k;
//  * 10 DECOY peers: head + 600 unique junk documents with tf = 1 —
//    lots of raw novelty, none of it in the top-k.
// Flat novelty (and histogram weighting that is too soft) routes to the
// decoys; sufficiently sharp score weighting routes to the good peers.
//
// Usage: ablation_histogram [--peers=4] [--cells=8] [--k=100]

#include <cstdio>
#include <string>
#include <vector>

#include "minerva/api.h"
#include "util/bench_report.h"
#include "util/flags.h"
#include "util/hash.h"
#include "util/json_value.h"

namespace iqn {
namespace {

constexpr const char* kQueryTerms[] = {"alpha", "beta", "gamma"};

std::vector<std::string> MakeDocTerms(size_t query_tf, DocId id,
                                      size_t fillers) {
  std::vector<std::string> terms;
  for (const char* q : kQueryTerms) {
    for (size_t i = 0; i < query_tf; ++i) terms.push_back(q);
  }
  for (size_t f = 0; f < fillers; ++f) {
    terms.push_back("filler" + std::to_string(Hash64(id, f) % 5000));
  }
  return terms;
}

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("peers", 4, "routed peers per query");
  flags.DefineInt("cells", 8, "histogram cells");
  flags.DefineInt("k", 100, "reference top-k");
  flags.DefineString("out", "BENCH_ablation_histogram.json",
                     "bench report JSON path");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 1;
  }
  size_t max_peers = static_cast<size_t>(flags.GetInt("peers"));

  // Shared head documents.
  Corpus head;
  for (DocId id = 1; id <= 200; ++id) {
    (void)head.AddDocumentTerms(id, MakeDocTerms(3, id, 20));
  }

  std::vector<Corpus> collections;
  // 10 good peers: head + high-tf uniques, round-robin id assignment so
  // the reference top-k spreads over all good peers.
  for (size_t p = 0; p < 10; ++p) collections.push_back(head);
  for (DocId id = 1000; id < 3000; ++id) {
    size_t peer = id % 10;
    size_t tf = 5 + Hash64(id, 1) % 4;  // 5..8
    (void)collections[peer].AddDocumentTerms(id, MakeDocTerms(tf, id, 20));
  }
  // 10 decoy peers: head + masses of tf=1 junk.
  for (size_t p = 0; p < 10; ++p) {
    Corpus decoy = head;
    for (DocId id = 100000 + p * 1000; id < 100000 + p * 1000 + 600; ++id) {
      (void)decoy.AddDocumentTerms(id, MakeDocTerms(1, id, 20));
    }
    collections.push_back(std::move(decoy));
  }

  Query query;
  for (const char* q : kQueryTerms) query.terms.push_back(q);
  query.k = static_cast<size_t>(flags.GetInt("k"));

  minerva::EngineOptions options;
  options.core.synopsis.histogram_cells =
      static_cast<size_t>(flags.GetInt("cells"));
  auto engine = minerva::Engine::Create(options, std::move(collections));
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  if (!engine.value()->Publish().ok()) return 1;

  std::printf(
      "\n=== Ablation (Sec. 7.1): score-conscious novelty via histograms "
      "===\n");
  std::printf(
      "(10 good peers with novel TOP-k documents vs 10 decoy peers with 3x "
      "more novel but low-scoring documents; %zu routed peers, top-%zu)\n\n",
      max_peers, query.k);
  std::printf("%-36s %10s %14s\n", "novelty estimator", "recall",
              "decoys picked");

  struct Variant {
    std::string label;
    bool use_histograms;
    double exponent;
  };
  const Variant variants[] = {
      {"flat sets (no histograms)", false, 0.0},
      {"histograms, weight exponent 0", true, 0.0},
      {"histograms, weight exponent 1", true, 1.0},
      {"histograms, weight exponent 2", true, 2.0},
      {"histograms, weight exponent 4", true, 4.0},
  };
  std::vector<JsonValue> rows;
  for (const Variant& v : variants) {
    minerva::RoutingSpec routing;  // kIqn
    routing.iqn.use_histograms = v.use_histograms;
    routing.iqn.histogram_weight_exponent = v.exponent;
    // Initiate once from each good peer, average.
    double recall = 0.0;
    size_t decoys_picked = 0;
    size_t runs = 0;
    for (size_t initiator = 0; initiator < 10; initiator += 3) {
      QueryOutcome outcome;
      if (Status run = engine.value()->RunQueryWith(routing, initiator, query,
                                                    max_peers, &outcome);
          !run.ok()) {
        std::fprintf(stderr, "query failed: %s\n", run.ToString().c_str());
        continue;
      }
      recall += outcome.recall_remote_only;
      for (const auto& p : outcome.decision.peers) {
        if (p.peer_id >= 10) ++decoys_picked;
      }
      ++runs;
    }
    if (runs > 0) recall /= static_cast<double>(runs);
    std::printf("%-36s %9.1f%% %10zu/%zu\n", v.label.c_str(), recall * 100.0,
                decoys_picked, runs * max_peers);
    rows.push_back(JsonValue::Object(
        {{"estimator", JsonValue::String(v.label)},
         {"recall", JsonValue::Number(recall)},
         {"decoys_picked",
          JsonValue::Number(static_cast<double>(decoys_picked))},
         {"routed_slots",
          JsonValue::Number(static_cast<double>(runs * max_peers))}}));
  }
  std::printf(
      "\n(flat novelty chases the decoys' bulk; score-weighted novelty "
      "with a sharp enough exponent routes to the peers holding the "
      "actually-relevant documents)\n");

  BenchReport report(
      "ablation_histogram",
      JsonValue::Object(
          {{"peers", JsonValue::Number(static_cast<double>(max_peers))},
           {"cells",
            JsonValue::Number(
                static_cast<double>(flags.GetInt("cells")))},
           {"k", JsonValue::Number(static_cast<double>(query.k))}}));
  report.AddSection("results", JsonValue::Array(std::move(rows)));
  const std::string& out = flags.GetString("out");
  if (Status w = report.WriteFile(out); !w.ok()) {
    std::fprintf(stderr, "%s\n", w.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace iqn

int main(int argc, char** argv) { return iqn::Main(argc, argv); }

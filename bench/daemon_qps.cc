// BENCH-DAEMON: sustained query throughput of the socket transport
// (writes BENCH_daemon.json).
//
// Boots the p2p_web_search topology as a multi-rank cluster INSIDE one
// process: R TcpTransport-backed engines on ephemeral loopback ports,
// exchanging the same length-prefixed frames separate minervad
// processes would — every remote synopsis fetch and directory post
// crosses a real socket. The query stream then runs for --rounds
// rounds, and the bench reports wall-clock QPS per round plus the
// sustained rate over all rounds.
//
// Two gates ride along (exit non-zero on failure):
//   * the cluster's result fingerprint must equal the simulated
//     transport's on the identical stream (transport cannot change
//     results — the multiprocess CI job checks the same property
//     across real process boundaries);
//   * sustained QPS must be positive (the stream actually ran).
//
// Determinism contract: every wall-clock key contains "wall", so
// tools/bench_diff.py ignores it across runs; everything else in the
// report is a pure function of the seeds.
//
// Usage: daemon_qps [--ranks=N] [--rounds=N] [--out=PATH]

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "minerva/scenario.h"
#include "net/tcp_transport.h"
#include "util/bench_report.h"
#include "util/flags.h"
#include "util/json_value.h"
#include "util/metrics.h"

namespace iqn {
namespace {

minerva::ScenarioSpec GateSpec() {
  minerva::ScenarioSpec spec;
  spec.name = "p2p_web_search";
  spec.seed = 11;
  spec.corpus.documents = 3000;
  spec.corpus.vocabulary = 500;
  spec.topology.peers = 10;  // (5 choose 2) fragment combinations
  spec.topology.fragments = 5;
  spec.topology.partition = minerva::PartitionKind::kChooseCombinations;
  spec.topology.subset = 2;
  spec.engine.max_peers = 3;
  spec.engine.cache = false;
  spec.queries.pool = 40;
  spec.queries.executions = 80;
  spec.queries.zipf_s = 1.0;
  return spec;
}

struct LegResult {
  minerva::ScenarioCursor cursor{1};
  uint64_t messages = 0;
  uint64_t bytes = 0;
  std::vector<double> round_wall_ms;
  double total_wall_ms = 0.0;
};

// Runs `rounds` repetitions of the stream over `engines` (one per rank;
// a single engine == the simulated-transport leg) and times each round.
Status RunLeg(const minerva::ScenarioSpec& spec,
              const std::vector<std::unique_ptr<minerva::Engine>>& engines,
              const minerva::ScenarioWorkload& workload, size_t rounds,
              LegResult* out) {
  const size_t num_peers = workload.collections.size();
  out->cursor = minerva::ScenarioCursor(rounds);
  for (size_t r = 0; r < engines.size(); ++r) {
    IQN_RETURN_IF_ERROR(engines[r]->Publish());
  }
  for (const auto& engine : engines) {
    engine->network().ResetStats();
  }
  MetricsRegistry::Default().Reset();

  for (size_t round = 0; round < rounds; ++round) {
    auto start = std::chrono::steady_clock::now();
    for (size_t pos = 0; pos < workload.schedule.size(); ++pos) {
      size_t initiator = pos % num_peers;
      size_t owner = initiator % engines.size();
      QueryOutcome outcome;
      IQN_RETURN_IF_ERROR(engines[owner]->RunQuery(
          initiator, workload.pool[workload.schedule[pos]], &outcome));
      out->cursor.Apply(spec, round,
                        minerva::ScenarioOutcomeWire::FromOutcome(outcome));
    }
    double wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    out->round_wall_ms.push_back(wall_ms);
    out->total_wall_ms += wall_ms;
  }
  for (const auto& engine : engines) {
    out->messages += engine->network().stats().messages;
    out->bytes += engine->network().stats().bytes;
  }
  return Status::OK();
}

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("ranks", 5, "transport ranks (engines) in the cluster");
  flags.DefineInt("rounds", 3, "whole-stream repetitions to time");
  flags.DefineString("out", "BENCH_daemon.json", "report path");
  if (Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 1;
  }
  const size_t ranks = static_cast<size_t>(flags.GetInt("ranks"));
  const size_t rounds = static_cast<size_t>(flags.GetInt("rounds"));

  minerva::ScenarioSpec spec = GateSpec();
  spec.queries.rounds = rounds;
  Result<minerva::ScenarioWorkload> workload =
      minerva::BuildScenarioWorkload(spec);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }
  if (ranks == 0 || ranks > workload.value().collections.size()) {
    std::fprintf(stderr, "--ranks must be in [1, %zu]\n",
                 workload.value().collections.size());
    return 1;
  }

  // Cluster leg: R engines on ephemeral loopback ports; ranks learn
  // each other's actual ports via SetPeerEndpoint before any traffic.
  spec.transport.kind = TransportKind::kTcp;
  spec.transport.endpoints.assign(ranks, "127.0.0.1:0");
  LegResult cluster;
  {
    std::vector<std::unique_ptr<minerva::Engine>> engines;
    std::vector<TcpTransport*> transports;
    for (size_t r = 0; r < ranks; ++r) {
      Result<minerva::ScenarioWorkload> copy =
          minerva::BuildScenarioWorkload(spec);
      if (!copy.ok()) {
        std::fprintf(stderr, "%s\n", copy.status().ToString().c_str());
        return 1;
      }
      Result<std::unique_ptr<minerva::Engine>> engine =
          minerva::Engine::Create(
              minerva::EngineOptionsFromSpec(spec, static_cast<uint32_t>(r)),
              std::move(copy.value().collections));
      if (!engine.ok()) {
        std::fprintf(stderr, "rank %zu: %s\n", r,
                     engine.status().ToString().c_str());
        return 1;
      }
      engines.push_back(std::move(engine).value());
      transports.push_back(
          static_cast<TcpTransport*>(&engines.back()->network()));
    }
    for (size_t a = 0; a < ranks; ++a) {
      for (size_t b = 0; b < ranks; ++b) {
        if (a == b) continue;
        if (Status st = transports[a]->SetPeerEndpoint(
                static_cast<uint32_t>(b), transports[b]->listen_endpoint());
            !st.ok()) {
          std::fprintf(stderr, "%s\n", st.ToString().c_str());
          return 1;
        }
      }
    }
    if (Status st = RunLeg(spec, engines, workload.value(), rounds, &cluster);
        !st.ok()) {
      std::fprintf(stderr, "cluster leg: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // Reference leg: the same stream on the simulated transport.
  spec.transport.kind = TransportKind::kSimulated;
  spec.transport.endpoints.clear();
  LegResult sim;
  {
    std::vector<std::unique_ptr<minerva::Engine>> engines;
    Result<std::unique_ptr<minerva::Engine>> engine = minerva::Engine::Create(
        minerva::EngineOptionsFromSpec(spec, 0),
        std::move(workload.value().collections));
    if (!engine.ok()) {
      std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
      return 1;
    }
    engines.push_back(std::move(engine).value());
    Result<minerva::ScenarioWorkload> copy =
        minerva::BuildScenarioWorkload(spec);
    if (!copy.ok()) {
      std::fprintf(stderr, "%s\n", copy.status().ToString().c_str());
      return 1;
    }
    if (Status st = RunLeg(spec, engines, copy.value(), rounds, &sim);
        !st.ok()) {
      std::fprintf(stderr, "simulator leg: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  const uint64_t total_queries = cluster.cursor.queries_run;
  const double sustained_wall_qps =
      cluster.total_wall_ms > 0.0
          ? 1000.0 * static_cast<double>(total_queries) / cluster.total_wall_ms
          : 0.0;
  const bool results_match =
      cluster.cursor.result_fingerprint == sim.cursor.result_fingerprint &&
      cluster.cursor.recall_sum == sim.cursor.recall_sum &&
      cluster.messages == sim.messages && cluster.bytes == sim.bytes;
  const bool pass = results_match && sustained_wall_qps > 0.0;

  BenchReport report(
      "daemon_qps",
      JsonValue::Object(
          {{"scenario", JsonValue::String(spec.name)},
           {"ranks", JsonValue::Number(static_cast<double>(ranks))},
           {"peers", JsonValue::Number(
                         static_cast<double>(spec.topology.peers))},
           {"rounds", JsonValue::Number(static_cast<double>(rounds))},
           {"queries_per_round",
            JsonValue::Number(
                static_cast<double>(workload.value().schedule.size()))}}));
  std::vector<JsonValue> round_qps;
  for (double wall_ms : cluster.round_wall_ms) {
    round_qps.push_back(JsonValue::Number(
        wall_ms > 0.0 ? 1000.0 *
                            static_cast<double>(
                                workload.value().schedule.size()) /
                            wall_ms
                      : 0.0));
  }
  report.AddSection(
      "results",
      JsonValue::Object(
          {{"queries_run",
            JsonValue::Number(static_cast<double>(total_queries))},
           {"mean_recall",
            JsonValue::Number(cluster.cursor.recall_sum /
                              static_cast<double>(total_queries))},
           {"result_fingerprint",
            JsonValue::String(std::to_string(
                cluster.cursor.result_fingerprint))},
           {"messages",
            JsonValue::Number(static_cast<double>(cluster.messages))},
           {"bytes", JsonValue::Number(static_cast<double>(cluster.bytes))}}));
  report.AddSection(
      "wall",
      JsonValue::Object(
          {{"sustained_wall_qps", JsonValue::Number(sustained_wall_qps)},
           {"round_wall_qps", JsonValue::Array(std::move(round_qps))},
           {"total_wall_ms", JsonValue::Number(cluster.total_wall_ms)},
           {"simulator_total_wall_ms",
            JsonValue::Number(sim.total_wall_ms)}}));
  report.AddSection(
      "pass",
      JsonValue::Object({{"cluster_matches_simulator",
                          JsonValue::Bool(results_match)},
                         {"pass", JsonValue::Bool(pass)}}));

  const std::string& out = flags.GetString("out");
  if (Status st = report.WriteFile(out); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf(
      "daemon_qps: %zu ranks, %llu queries, %.1f wall QPS sustained, "
      "match=%s -> %s\n",
      ranks, static_cast<unsigned long long>(total_queries),
      sustained_wall_qps, results_match ? "yes" : "NO", out.c_str());
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace iqn

int main(int argc, char** argv) { return iqn::Main(argc, argv); }

// BENCH-CACHE: directory-cache effectiveness vs query skew and churn.
//
// One initiator peer runs a long stream of queries drawn from a fixed
// pool with Zipf-distributed popularity (s = 0 is uniform; s = 1 is the
// classic web-query skew). Every (skew, churn) sweep point runs the
// IDENTICAL stream twice on fresh engines — once with the versioned
// directory cache disabled and once enabled — and compares:
//  * routing bytes (the directory-fetch traffic the cache exists to
//    eliminate; cache hits are charged zero network cost),
//  * per-query results, which must be BIT-IDENTICAL: the cache serves
//    the same decoded posts a fresh fetch would, and version stamps
//    invalidate entries the moment a republish changes them.
// Churn points republish evolving collections mid-stream
// (Peer::AddDocuments with incremental refresh), so the publish-version
// counters must invalidate exactly the touched terms — recall is
// measured against the evolved corpus either way.
//
// Acceptance (checked at exit, non-zero status on violation, so CI can
// gate on it): at s = 1.0 with zero churn the cached run must cut
// routing bytes by >= 40%, and EVERY point must be result-identical.
//
// Usage: cache_effectiveness [--docs=2000] [--peers=10] [--pool=48]
//          [--executions=96] [--k=10] [--max_peers=3] [--seed=42]
//          [--churn-every=16] [--out=BENCH_cache.json]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "minerva/api.h"
#include "util/bench_report.h"
#include "util/flags.h"
#include "util/metrics.h"
#include "util/random.h"
#include "workload/fragments.h"
#include "workload/queries.h"
#include "workload/synthetic_corpus.h"

namespace iqn {
namespace {

struct BenchConfig {
  size_t docs = 2000;
  size_t peers = 10;
  size_t pool = 48;        // distinct queries in the pool
  size_t executions = 96;  // stream length drawn from the pool
  size_t k = 10;
  size_t max_peers = 3;
  uint64_t seed = 42;
  size_t churn_every = 16;  // queries between churn events (churn points)
  std::string out = "BENCH_cache.json";
};

struct Workload {
  std::vector<Corpus> collections;
  std::vector<Query> pool;
  SyntheticCorpusOptions corpus_opts;  // for generating churn deltas
};

Workload BuildWorkload(const BenchConfig& config) {
  SyntheticCorpusOptions corpus_opts;
  corpus_opts.num_documents = config.docs;
  corpus_opts.vocabulary_size = config.docs / 8;
  corpus_opts.min_document_length = 30;
  corpus_opts.max_document_length = 100;
  corpus_opts.seed = config.seed;
  auto gen = SyntheticCorpusGenerator::Create(corpus_opts);
  if (!gen.ok()) {
    std::fprintf(stderr, "corpus: %s\n", gen.status().ToString().c_str());
    std::exit(1);
  }
  Corpus corpus = gen.value().Generate();
  auto frags = SplitIntoFragments(corpus, config.peers * 2);
  auto collections = SlidingWindowCollections(frags.value(), /*window=*/3,
                                              /*offset=*/2, config.peers);
  if (!collections.ok()) {
    std::fprintf(stderr, "collections: %s\n",
                 collections.status().ToString().c_str());
    std::exit(1);
  }

  QueryWorkloadOptions q_opts;
  q_opts.num_queries = config.pool;
  q_opts.min_terms = 2;
  q_opts.max_terms = 3;
  q_opts.band_low = 0.005;
  q_opts.band_high = 0.10;
  q_opts.k = config.k;
  q_opts.seed = config.seed + 1;
  auto queries = GenerateQueries(gen.value().vocabulary(), q_opts);
  if (!queries.ok()) {
    std::fprintf(stderr, "queries: %s\n",
                 queries.status().ToString().c_str());
    std::exit(1);
  }

  Workload workload;
  workload.collections = std::move(collections).value();
  workload.pool = std::move(queries).value();
  workload.corpus_opts = corpus_opts;
  return workload;
}

/// Zipf-popularity stream over the pool: query i is drawn with
/// probability proportional to 1/(i+1)^s. s = 0 degenerates to uniform.
std::vector<size_t> DrawSchedule(size_t pool, size_t executions, double s,
                                 uint64_t seed) {
  std::vector<double> cdf(pool);
  double norm = 0.0;
  for (size_t i = 0; i < pool; ++i) {
    norm += std::pow(1.0 / static_cast<double>(i + 1), s);
    cdf[i] = norm;
  }
  std::vector<size_t> schedule;
  schedule.reserve(executions);
  Rng rng(seed);
  for (size_t i = 0; i < executions; ++i) {
    double u = rng.NextDouble() * norm;
    schedule.push_back(static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin()));
  }
  return schedule;
}

/// Everything about a query result that must not change when the cache
/// is switched on.
struct ResultFingerprint {
  double recall = 0.0;
  std::vector<uint64_t> peers;
  std::vector<ScoredDoc> merged;

  bool operator==(const ResultFingerprint& other) const {
    if (recall != other.recall || peers != other.peers ||
        merged.size() != other.merged.size()) {
      return false;
    }
    for (size_t i = 0; i < merged.size(); ++i) {
      if (merged[i].doc != other.merged[i].doc ||
          merged[i].score != other.merged[i].score) {
        return false;
      }
    }
    return true;
  }
};

struct ArmResult {
  uint64_t routing_bytes = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_invalidations = 0;
  std::vector<ResultFingerprint> fingerprints;
};

/// Runs the schedule on a FRESH engine from a single initiator (peer 0:
/// the repeated-query consumer whose cache is under test). `churn_every`
/// > 0 injects a churn event before every churn_every-th query: one peer
/// (round-robin) crawls new documents and incrementally republishes the
/// touched terms, bumping their publish versions.
ArmResult RunArm(const BenchConfig& config, const std::vector<size_t>& schedule,
                 size_t churn_every, bool cache_enabled) {
  Workload workload = BuildWorkload(config);
  minerva::EngineOptions options;  // IQN routing by default
  options.max_peers = config.max_peers;
  options.core.cache.enabled = cache_enabled;
  auto engine =
      minerva::Engine::Create(options, std::move(workload.collections));
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    std::exit(1);
  }
  minerva::Engine& e = *engine.value();
  if (Status published = e.Publish(); !published.ok()) {
    std::fprintf(stderr, "publish: %s\n", published.ToString().c_str());
    std::exit(1);
  }
  MetricsRegistry::Default().Reset();

  ArmResult arm;
  DocId next_doc_id = 10 * static_cast<DocId>(config.docs);
  size_t churn_events = 0;
  for (size_t i = 0; i < schedule.size(); ++i) {
    if (churn_every > 0 && i > 0 && i % churn_every == 0) {
      // Identical churn in both arms: the delta depends only on the
      // event index, so cached and uncached engines evolve in lockstep.
      size_t p = churn_events % e.num_peers();
      SyntheticCorpusOptions delta_opts = workload.corpus_opts;
      delta_opts.num_documents = config.docs / 20;
      delta_opts.first_doc_id = next_doc_id;
      delta_opts.vocabulary_seed = workload.corpus_opts.seed;
      delta_opts.seed = config.seed + 1000 * (churn_events + 1);
      next_doc_id += static_cast<DocId>(config.docs / 20);
      ++churn_events;
      auto delta_gen = SyntheticCorpusGenerator::Create(delta_opts);
      if (!delta_gen.ok()) std::exit(1);
      Status added = e.peer(p).AddDocuments(delta_gen.value().Generate(),
                                            /*republish=*/true);
      if (!added.ok()) {
        std::fprintf(stderr, "churn: %s\n", added.ToString().c_str());
        std::exit(1);
      }
      e.RebuildReferenceIndex();
    }
    QueryOutcome outcome;
    if (Status run =
            e.RunQuery(/*initiator=*/0, workload.pool[schedule[i]], &outcome);
        !run.ok()) {
      std::fprintf(stderr, "query %zu: %s\n", i, run.ToString().c_str());
      std::exit(1);
    }
    arm.routing_bytes += outcome.routing_bytes;
    ResultFingerprint fp;
    fp.recall = outcome.recall;
    for (const auto& peer : outcome.decision.peers) {
      fp.peers.push_back(peer.peer_id);
    }
    fp.merged = outcome.execution.merged;
    arm.fingerprints.push_back(std::move(fp));
  }
  arm.cache_hits = MetricsRegistry::Default().GetCounter("cache.hits")->Value();
  arm.cache_misses =
      MetricsRegistry::Default().GetCounter("cache.misses")->Value();
  arm.cache_invalidations =
      MetricsRegistry::Default().GetCounter("cache.invalidations")->Value();
  return arm;
}

struct SweepPoint {
  double zipf_s = 0.0;
  size_t churn_every = 0;
  uint64_t bytes_uncached = 0;
  uint64_t bytes_cached = 0;
  double reduction = 0.0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_invalidations = 0;
  bool identical = false;
};

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("docs", 2000, "corpus size in documents");
  flags.DefineInt("peers", 10, "number of peers (sliding-window split)");
  flags.DefineInt("pool", 48, "distinct queries in the pool");
  flags.DefineInt("executions", 96, "stream length drawn from the pool");
  flags.DefineInt("k", 10, "top-k per query");
  flags.DefineInt("max_peers", 3, "remote peers contacted per query");
  flags.DefineInt("seed", 42, "workload seed");
  flags.DefineInt("churn-every", 16,
                  "queries between republish events at churn sweep points");
  flags.DefineString("out", "BENCH_cache.json", "output JSON path");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 1;
  }
  BenchConfig config;
  config.docs = static_cast<size_t>(flags.GetInt("docs"));
  config.peers = static_cast<size_t>(flags.GetInt("peers"));
  config.pool = static_cast<size_t>(flags.GetInt("pool"));
  config.executions = static_cast<size_t>(flags.GetInt("executions"));
  config.k = static_cast<size_t>(flags.GetInt("k"));
  config.max_peers = static_cast<size_t>(flags.GetInt("max_peers"));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  config.churn_every = static_cast<size_t>(flags.GetInt("churn-every"));
  config.out = flags.GetString("out");

  std::printf("cache_effectiveness: %zu executions over a %zu-query pool, "
              "%zu peers, initiator 0\n",
              config.executions, config.pool, config.peers);

  std::vector<SweepPoint> points;
  std::string metrics_json;  // of the last cached arm
  for (double s : {0.0, 0.5, 1.0}) {
    for (size_t churn_every : {size_t{0}, config.churn_every}) {
      std::vector<size_t> schedule = DrawSchedule(
          config.pool, config.executions, s, config.seed + 77);
      ArmResult uncached = RunArm(config, schedule, churn_every, false);
      ArmResult cached = RunArm(config, schedule, churn_every, true);
      metrics_json = MetricsRegistry::Default().Snapshot().ToJson();

      SweepPoint point;
      point.zipf_s = s;
      point.churn_every = churn_every;
      point.bytes_uncached = uncached.routing_bytes;
      point.bytes_cached = cached.routing_bytes;
      point.reduction =
          uncached.routing_bytes > 0
              ? 1.0 - static_cast<double>(cached.routing_bytes) /
                          static_cast<double>(uncached.routing_bytes)
              : 0.0;
      point.cache_hits = cached.cache_hits;
      point.cache_misses = cached.cache_misses;
      point.cache_invalidations = cached.cache_invalidations;
      point.identical = uncached.fingerprints.size() ==
                        cached.fingerprints.size();
      for (size_t i = 0; point.identical && i < cached.fingerprints.size();
           ++i) {
        point.identical = cached.fingerprints[i] == uncached.fingerprints[i];
      }
      std::printf("  s=%.1f churn_every=%-3zu  routing bytes %8llu -> %8llu "
                  "(-%5.1f%%)  hits=%llu misses=%llu invalidations=%llu  %s\n",
                  s, churn_every,
                  static_cast<unsigned long long>(point.bytes_uncached),
                  static_cast<unsigned long long>(point.bytes_cached),
                  100.0 * point.reduction,
                  static_cast<unsigned long long>(point.cache_hits),
                  static_cast<unsigned long long>(point.cache_misses),
                  static_cast<unsigned long long>(point.cache_invalidations),
                  point.identical ? "results identical" : "RESULTS DIFFER");
      points.push_back(point);
    }
  }

  LegacyReportWriter writer;
  FILE* out = writer.stream();
  if (out == nullptr) {
    std::fprintf(stderr, "cannot buffer bench JSON\n");
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"cache_effectiveness\",\n");
  std::fprintf(out,
               "  \"workload\": {\"docs\": %zu, \"peers\": %zu, "
               "\"pool\": %zu, \"executions\": %zu, \"k\": %zu, "
               "\"max_peers\": %zu, \"seed\": %llu, \"churn_every\": %zu},\n",
               config.docs, config.peers, config.pool, config.executions,
               config.k, config.max_peers,
               static_cast<unsigned long long>(config.seed),
               config.churn_every);
  std::fprintf(out,
               "  \"metric_note\": \"each point runs the identical "
               "Zipf-drawn query stream on fresh engines with the directory "
               "cache off and on; reduction is routing-bytes saved; "
               "identical asserts bit-equal per-query results; churn_every "
               "0 means no churn\",\n");
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(
        out,
        "    {\"zipf_s\": %.2f, \"churn_every\": %zu, "
        "\"bytes_uncached\": %llu, \"bytes_cached\": %llu, "
        "\"reduction\": %.4f, \"cache_hits\": %llu, \"cache_misses\": %llu, "
        "\"cache_invalidations\": %llu, \"identical\": %s}%s\n",
        p.zipf_s, p.churn_every,
        static_cast<unsigned long long>(p.bytes_uncached),
        static_cast<unsigned long long>(p.bytes_cached), p.reduction,
        static_cast<unsigned long long>(p.cache_hits),
        static_cast<unsigned long long>(p.cache_misses),
        static_cast<unsigned long long>(p.cache_invalidations),
        p.identical ? "true" : "false", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"metrics\": %s", metrics_json.c_str());
  std::fprintf(out, "}\n");
  if (Status w = writer.Finish(config.out); !w.ok()) {
    std::fprintf(stderr, "%s\n", w.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", config.out.c_str());

  // Acceptance gates.
  int violations = 0;
  for (const SweepPoint& p : points) {
    if (!p.identical) {
      std::fprintf(stderr,
                   "ACCEPTANCE VIOLATION: cached results differ from "
                   "uncached at s=%.1f churn_every=%zu\n",
                   p.zipf_s, p.churn_every);
      ++violations;
    }
    if (p.zipf_s == 1.0 && p.churn_every == 0 && p.reduction < 0.40) {
      std::fprintf(stderr,
                   "ACCEPTANCE VIOLATION: s=1.0 zero-churn traffic "
                   "reduction %.1f%% below the 40%% bound\n",
                   100.0 * p.reduction);
      ++violations;
    }
  }
  return violations == 0 ? 0 : 1;
}

}  // namespace
}  // namespace iqn

int main(int argc, char** argv) { return iqn::Main(argc, argv); }

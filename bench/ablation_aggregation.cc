// ABL-AGG — paper Section 6: multi-dimensional query handling.
//
// Compares the two synopsis-aggregation strategies (per-peer, Sec. 6.2,
// vs per-term, Sec. 6.3) for multi-keyword queries under both query
// models (disjunctive / conjunctive), with MIPs and — where supported —
// hash sketches. The interesting cells:
//   * per-peer is the more accurate strategy when the synopsis supports
//     the needed set operation;
//   * per-term is the only strategy that serves conjunctive queries with
//     hash sketches at all (no HS intersection exists).
//
// Usage: ablation_aggregation [--docs=4000] [--queries=8] [--peers=5]

#include <cstdio>
#include <string>
#include <vector>

#include "minerva/api.h"
#include "util/bench_report.h"
#include "util/flags.h"
#include "util/json_value.h"
#include "workload/fragments.h"
#include "workload/queries.h"
#include "workload/synthetic_corpus.h"

namespace iqn {
namespace {

struct Cell {
  double recall = 0.0;
  bool supported = true;
};

Cell Measure(minerva::Engine* engine, const std::vector<Query>& queries,
             const IqnOptions& options, size_t max_peers) {
  minerva::RoutingSpec routing;  // kIqn
  routing.iqn = options;
  Cell cell;
  size_t counted = 0;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    QueryOutcome outcome;
    Status run = engine->RunQueryWith(routing, qi % engine->num_peers(),
                                      queries[qi], max_peers, &outcome);
    if (!run.ok()) {
      if (run.code() == StatusCode::kUnimplemented) {
        cell.supported = false;
        return cell;
      }
      std::fprintf(stderr, "query failed: %s\n", run.ToString().c_str());
      continue;
    }
    cell.recall += outcome.recall_remote_only;
    ++counted;
  }
  if (counted > 0) cell.recall /= static_cast<double>(counted);
  return cell;
}

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("docs", 4000, "corpus size");
  flags.DefineInt("queries", 8, "queries per cell");
  flags.DefineInt("peers", 5, "routed peers per query");
  flags.DefineInt("seed", 42, "workload seed");
  flags.DefineString("out", "BENCH_ablation_aggregation.json",
                     "bench report JSON path");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 1;
  }
  size_t docs = static_cast<size_t>(flags.GetInt("docs"));
  size_t num_queries = static_cast<size_t>(flags.GetInt("queries"));
  size_t max_peers = static_cast<size_t>(flags.GetInt("peers"));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));

  SyntheticCorpusOptions corpus_opts;
  corpus_opts.num_documents = docs;
  corpus_opts.vocabulary_size = docs / 8;
  corpus_opts.seed = seed;
  auto gen = SyntheticCorpusGenerator::Create(corpus_opts);
  if (!gen.ok()) return 1;
  Corpus corpus = gen.value().Generate();

  std::printf(
      "\n=== Ablation (Sec. 6): synopsis aggregation strategy for "
      "multi-keyword queries ===\n");
  std::printf("(%zu docs, 25 peers sliding-window, %zu 2-3 term queries, "
              "%zu routed peers; mean remote recall)\n\n",
              docs, num_queries, max_peers);
  std::printf("%-14s %-14s %-14s %10s\n", "synopsis", "query mode",
              "aggregation", "recall");

  std::vector<JsonValue> rows;
  for (SynopsisType type :
       {SynopsisType::kMinWise, SynopsisType::kHashSketch}) {
    for (QueryMode mode :
         {QueryMode::kDisjunctive, QueryMode::kConjunctive}) {
      // Fresh engine per synopsis type and mode.
      auto frags = SplitIntoFragments(corpus, 50);
      if (!frags.ok()) return 1;
      auto collections =
          SlidingWindowCollections(frags.value(), 6, 2, /*num_peers=*/25);
      if (!collections.ok()) return 1;
      minerva::EngineOptions options;
      options.core.synopsis.type = type;
      auto engine =
          minerva::Engine::Create(options, std::move(collections).value());
      if (!engine.ok()) return 1;
      if (!engine.value()->Publish().ok()) return 1;

      QueryWorkloadOptions q_opts;
      q_opts.num_queries = num_queries;
      q_opts.mode = mode;
      q_opts.band_low = 0.005;
      q_opts.band_high = 0.08;
      q_opts.seed = seed + 3;
      auto queries = GenerateQueries(gen.value().vocabulary(), q_opts);
      if (!queries.ok()) return 1;

      struct Variant {
        const char* label;
        IqnOptions options;
      };
      std::vector<Variant> variants;
      {
        IqnOptions per_peer;
        per_peer.aggregation = AggregationStrategy::kPerPeer;
        variants.push_back({"per-peer", per_peer});
        IqnOptions per_term;
        per_term.aggregation = AggregationStrategy::kPerTerm;
        variants.push_back({"per-term", per_term});
        IqnOptions per_term_corr = per_term;
        per_term_corr.correlation_aware = true;
        variants.push_back({"per-term+corr", per_term_corr});
      }
      for (const Variant& variant : variants) {
        Cell cell = Measure(engine.value().get(), queries.value(),
                            variant.options, max_peers);
        std::printf("%-14s %-14s %-14s ", SynopsisTypeName(type),
                    mode == QueryMode::kConjunctive ? "conjunctive"
                                                    : "disjunctive",
                    variant.label);
        if (cell.supported) {
          std::printf("%9.1f%%\n", cell.recall * 100.0);
        } else {
          std::printf("%10s\n", "n/a (*)");
        }
        rows.push_back(JsonValue::Object(
            {{"synopsis", JsonValue::String(SynopsisTypeName(type))},
             {"query_mode",
              JsonValue::String(mode == QueryMode::kConjunctive
                                    ? "conjunctive"
                                    : "disjunctive")},
             {"aggregation", JsonValue::String(variant.label)},
             {"supported", JsonValue::Bool(cell.supported)},
             {"recall", JsonValue::Number(cell.recall)}}));
      }
    }
  }
  std::printf(
      "\n(*) hash sketches have no intersection operation (Sec. 3.4), so "
      "per-peer aggregation cannot serve conjunctive queries — the gap "
      "per-term aggregation exists to fill.\n");

  BenchReport report(
      "ablation_aggregation",
      JsonValue::Object(
          {{"docs", JsonValue::Number(static_cast<double>(docs))},
           {"queries",
            JsonValue::Number(static_cast<double>(num_queries))},
           {"peers", JsonValue::Number(static_cast<double>(max_peers))},
           {"seed", JsonValue::Number(static_cast<double>(seed))}}));
  report.AddSection("results", JsonValue::Array(std::move(rows)));
  const std::string& out = flags.GetString("out");
  if (Status w = report.WriteFile(out); !w.ok()) {
    std::fprintf(stderr, "%s\n", w.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace iqn

int main(int argc, char** argv) { return iqn::Main(argc, argv); }

// ABL-DHT — substrate sanity for paper Section 4: the directory must
// scale, i.e. Chord lookups take O(log n) hops and posting a synopsis
// costs a bounded number of messages/bytes regardless of network size.
//
// Usage: dht_scaling [--lookups=200]

#include <cmath>
#include <cstdio>
#include <string>

#include <vector>

#include "dht/chord.h"
#include "dht/kv_store.h"
#include "net/transport.h"
#include "util/bench_report.h"
#include "util/flags.h"
#include "util/json_value.h"

namespace iqn {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("lookups", 200, "lookups per ring size");
  flags.DefineInt("max_nodes", 4096, "largest ring size");
  flags.DefineString("out", "BENCH_dht_scaling.json",
                     "bench report JSON path");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 1;
  }
  int lookups = static_cast<int>(flags.GetInt("lookups"));
  size_t max_nodes = static_cast<size_t>(flags.GetInt("max_nodes"));

  std::printf("\n=== DHT scaling: Chord lookup cost vs network size ===\n\n");
  std::printf("%-10s %12s %12s %14s %16s\n", "nodes", "avg hops", "max hops",
              "0.5*log2(n)", "msgs/post");

  std::vector<JsonValue> rows;
  for (size_t n = 16; n <= max_nodes; n *= 4) {
    auto net = CreateTransport(TransportOptions{});
    if (!net.ok()) {
      std::fprintf(stderr, "net: %s\n", net.status().ToString().c_str());
      return 1;
    }
    auto ring = ChordRing::Build(net.value().get(), n);
    if (!ring.ok()) {
      std::fprintf(stderr, "ring: %s\n", ring.status().ToString().c_str());
      return 1;
    }

    double total_hops = 0;
    int max_hops = 0;
    for (int i = 0; i < lookups; ++i) {
      auto found = ring.value()->Lookup(
          static_cast<size_t>(i) % n, RingIdForKey("key" + std::to_string(i)));
      if (!found.ok()) continue;
      total_hops += found.value().hops;
      max_hops = std::max(max_hops, found.value().hops);
    }

    // Directory posting cost: messages per Upsert from a random node.
    auto store = DhtStore::Attach(&ring.value()->node(0), 1);
    if (!store.ok()) return 1;
    net.value()->ResetStats();
    constexpr int kPosts = 50;
    for (int i = 0; i < kPosts; ++i) {
      (void)store.value()->Upsert("term" + std::to_string(i), "p",
                                  Bytes(256, 0));
    }
    double msgs_per_post =
        static_cast<double>(net.value()->stats().messages) / kPosts;

    std::printf("%-10zu %12.2f %12d %14.2f %16.2f\n", n,
                total_hops / lookups, max_hops,
                0.5 * std::log2(static_cast<double>(n)), msgs_per_post);
    rows.push_back(JsonValue::Object(
        {{"nodes", JsonValue::Number(static_cast<double>(n))},
         {"avg_hops", JsonValue::Number(total_hops / lookups)},
         {"max_hops", JsonValue::Number(static_cast<double>(max_hops))},
         {"msgs_per_post", JsonValue::Number(msgs_per_post)}}));
  }
  std::printf(
      "\n(expected: avg hops tracks ~0.5*log2(n) — Chord's O(log n) "
      "routing — and posting cost grows only logarithmically)\n");

  BenchReport report(
      "dht_scaling",
      JsonValue::Object(
          {{"lookups", JsonValue::Number(static_cast<double>(lookups))},
           {"max_nodes",
            JsonValue::Number(static_cast<double>(max_nodes))}}));
  report.AddSection("results", JsonValue::Array(std::move(rows)));
  const std::string& out = flags.GetString("out");
  if (Status w = report.WriteFile(out); !w.ok()) {
    std::fprintf(stderr, "%s\n", w.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace iqn

int main(int argc, char** argv) { return iqn::Main(argc, argv); }

// ABL-FRESH — directory freshness under evolving data (the paper's
// conclusion: "dynamic and automatic adaptation to evolving data and
// system characteristics").
//
// Peers keep crawling after they published their synopses. Stale posts
// make the router blind to the new documents: their docIds are not in
// any posted synopsis, so novelty is under-estimated and list statistics
// are outdated. This bench grows every peer's collection in rounds and
// compares IQN recall when peers (a) never refresh their posts, (b)
// refresh only the touched terms incrementally (Peer::AddDocuments), and
// (c) republish everything. Recall is measured against the evolved
// corpus.
//
// Usage: ablation_freshness [--docs=3000] [--rounds=3] [--queries=6]

#include <cstdio>
#include <vector>

#include "minerva/api.h"
#include "util/bench_report.h"
#include "util/flags.h"
#include "util/json_value.h"
#include "workload/fragments.h"
#include "workload/queries.h"
#include "workload/synthetic_corpus.h"

namespace iqn {
namespace {

enum class RefreshPolicy { kNever, kIncremental, kFullRepublish };

const char* PolicyName(RefreshPolicy policy) {
  switch (policy) {
    case RefreshPolicy::kNever:
      return "stale posts (never refresh)";
    case RefreshPolicy::kIncremental:
      return "incremental (touched terms)";
    case RefreshPolicy::kFullRepublish:
      return "full republish";
  }
  return "?";
}

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("docs", 3000, "initial corpus size");
  flags.DefineInt("rounds", 3, "crawl rounds after publishing");
  flags.DefineInt("queries", 6, "number of queries");
  flags.DefineInt("peers", 4, "routed peers per query");
  flags.DefineInt("seed", 42, "workload seed");
  flags.DefineString("out", "BENCH_ablation_freshness.json",
                     "bench report JSON path");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 1;
  }
  size_t docs = static_cast<size_t>(flags.GetInt("docs"));
  int rounds = static_cast<int>(flags.GetInt("rounds"));
  size_t num_queries = static_cast<size_t>(flags.GetInt("queries"));
  size_t max_peers = static_cast<size_t>(flags.GetInt("peers"));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));

  SyntheticCorpusOptions corpus_opts;
  corpus_opts.num_documents = docs;
  corpus_opts.vocabulary_size = docs / 8;
  corpus_opts.seed = seed;
  auto gen = SyntheticCorpusGenerator::Create(corpus_opts);
  if (!gen.ok()) return 1;
  Corpus corpus = gen.value().Generate();

  QueryWorkloadOptions q_opts;
  q_opts.num_queries = num_queries;
  q_opts.band_low = 0.005;
  q_opts.band_high = 0.08;
  q_opts.seed = seed + 1;
  auto queries = GenerateQueries(gen.value().vocabulary(), q_opts);
  if (!queries.ok()) return 1;

  std::printf(
      "\n=== Freshness: IQN recall while collections evolve after posting "
      "===\n");
  std::printf("(%zu initial docs on 20 peers; each round 3 peers crawl %zu "
              "new docs each; %zu routed peers)\n\n",
              docs, docs / 5, max_peers);
  std::printf("%-30s", "refresh policy");
  for (int r = 0; r <= rounds; ++r) std::printf("   round %d", r);
  std::printf("\n");

  std::vector<JsonValue> rows;
  for (RefreshPolicy policy :
       {RefreshPolicy::kNever, RefreshPolicy::kIncremental,
        RefreshPolicy::kFullRepublish}) {
    auto frags = SplitIntoFragments(corpus, 40);
    if (!frags.ok()) return 1;
    auto collections = SlidingWindowCollections(frags.value(), 6, 2, 20);
    if (!collections.ok()) return 1;
    auto engine = minerva::Engine::Create(minerva::EngineOptions{},
                                          std::move(collections).value());
    if (!engine.ok()) return 1;
    if (!engine.value()->Publish().ok()) return 1;

    std::printf("%-30s", PolicyName(policy));
    std::vector<JsonValue> recalls;
    minerva::RoutingSpec routing;  // kIqn
    DocId next_doc_id = 10 * docs;
    for (int round = 0; round <= rounds; ++round) {
      if (round > 0) {
        // Crawling is skewed (as on the real web): each round THREE
        // peers crawl a large batch of brand-new documents drawn from
        // the same vocabulary. Stale posts hide exactly this — the
        // router cannot know that these peers now hold most of the
        // novel (and fresh-into-the-top-k) documents.
        for (size_t c = 0; c < 3; ++c) {
          size_t p = (static_cast<size_t>(round - 1) * 3 + c) %
                     engine.value()->num_peers();
          SyntheticCorpusOptions delta_opts = corpus_opts;
          delta_opts.num_documents = docs / 5;
          delta_opts.first_doc_id = next_doc_id;
          delta_opts.vocabulary_seed = corpus_opts.seed;  // same vocabulary
          delta_opts.seed = seed + 1000 * static_cast<uint64_t>(round) + p;
          next_doc_id += docs / 5;
          auto delta_gen = SyntheticCorpusGenerator::Create(delta_opts);
          if (!delta_gen.ok()) return 1;
          Status added = engine.value()->peer(p).AddDocuments(
              delta_gen.value().Generate(),
              /*republish=*/policy == RefreshPolicy::kIncremental);
          if (!added.ok()) return 1;
          if (policy == RefreshPolicy::kFullRepublish) {
            if (!engine.value()->peer(p).PublishPostsBatched().ok()) return 1;
          }
        }
        engine.value()->RebuildReferenceIndex();
      }
      double recall = 0.0;
      size_t counted = 0;
      for (size_t qi = 0; qi < queries.value().size(); ++qi) {
        QueryOutcome outcome;
        if (!engine.value()
                 ->RunQueryWith(routing, qi % engine.value()->num_peers(),
                                queries.value()[qi], max_peers, &outcome)
                 .ok()) {
          continue;
        }
        recall += outcome.recall_remote_only;
        ++counted;
      }
      if (counted > 0) recall /= static_cast<double>(counted);
      std::printf("%9.1f%%", recall * 100.0);
      recalls.push_back(JsonValue::Number(recall));
    }
    std::printf("\n");
    rows.push_back(JsonValue::Object(
        {{"refresh_policy", JsonValue::String(PolicyName(policy))},
         {"recall_by_round", JsonValue::Array(std::move(recalls))}}));
  }
  std::printf(
      "\n(stale synopses make the router blind to freshly crawled "
      "documents; incremental refresh of only the touched terms keeps "
      "recall at the full-republish level)\n");

  BenchReport report(
      "ablation_freshness",
      JsonValue::Object(
          {{"docs", JsonValue::Number(static_cast<double>(docs))},
           {"rounds", JsonValue::Number(static_cast<double>(rounds))},
           {"queries",
            JsonValue::Number(static_cast<double>(num_queries))},
           {"peers", JsonValue::Number(static_cast<double>(max_peers))},
           {"seed", JsonValue::Number(static_cast<double>(seed))}}));
  report.AddSection("results", JsonValue::Array(std::move(rows)));
  const std::string& out = flags.GetString("out");
  if (Status w = report.WriteFile(out); !w.ok()) {
    std::fprintf(stderr, "%s\n", w.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace iqn

int main(int argc, char** argv) { return iqn::Main(argc, argv); }

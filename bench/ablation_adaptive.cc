// ABL-ADAPT — paper Section 7.2: adaptive per-term synopsis lengths
// under a peer-wide posting budget B.
//
// Each peer invests a total budget of B bits across all of its M terms
// (sum over terms of len_j = B). Compared at the SAME budget:
//  * uniform: every term gets B/M bits;
//  * benefit-proportional (the paper's heuristic) under the three benefit
//    notions Sec. 7.2 proposes: index list length, entries above a score
//    threshold, and the 90 %-score-mass count.
// Reported: directory bytes actually sent while posting, and the IQN
// routing recall achieved with the resulting synopses. Proportional
// allocation spends its bits on the long (hard-to-estimate) lists, which
// is where routing accuracy comes from.
//
// Usage: ablation_adaptive [--docs=3000] [--queries=6] [--peers=4]

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "minerva/api.h"
#include "util/bench_report.h"
#include "util/flags.h"
#include "util/json_value.h"
#include "workload/fragments.h"
#include "workload/queries.h"
#include "workload/synthetic_corpus.h"

namespace iqn {
namespace {

struct Variant {
  std::string label;
  bool uniform = false;
  BenefitPolicy policy = BenefitPolicy::kListLength;
};

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("docs", 3000, "corpus size");
  flags.DefineInt("queries", 6, "number of queries");
  flags.DefineInt("peers", 4, "routed peers per query");
  flags.DefineInt("seed", 42, "workload seed");
  flags.DefineString("out", "BENCH_ablation_adaptive.json",
                     "bench report JSON path");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 1;
  }
  size_t docs = static_cast<size_t>(flags.GetInt("docs"));
  size_t num_queries = static_cast<size_t>(flags.GetInt("queries"));
  size_t max_peers = static_cast<size_t>(flags.GetInt("peers"));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));

  SyntheticCorpusOptions corpus_opts;
  corpus_opts.num_documents = docs;
  corpus_opts.vocabulary_size = docs / 4;
  corpus_opts.seed = seed;
  auto gen = SyntheticCorpusGenerator::Create(corpus_opts);
  if (!gen.ok()) return 1;
  Corpus corpus = gen.value().Generate();

  QueryWorkloadOptions q_opts;
  q_opts.num_queries = num_queries;
  q_opts.band_low = 0.005;
  q_opts.band_high = 0.08;
  q_opts.seed = seed + 1;
  auto queries = GenerateQueries(gen.value().vocabulary(), q_opts);
  if (!queries.ok()) return 1;

  std::printf(
      "\n=== Ablation (Sec. 7.2): adaptive per-term synopsis lengths under "
      "a peer budget ===\n");
  std::printf("(%zu docs, 20 peers sliding-window, %zu queries, %zu routed "
              "peers, MIPs; same total budget per row group)\n\n",
              docs, num_queries, max_peers);
  std::printf("%-13s %-26s %14s %10s\n", "budget/peer", "allocation",
              "posted bytes", "recall");

  const Variant variants[] = {
      {"uniform B/M bits per term", true, BenefitPolicy::kListLength},
      {"benefit: list length", false, BenefitPolicy::kListLength},
      {"benefit: entries > 0.5", false, BenefitPolicy::kEntriesAboveThreshold},
      {"benefit: 90% score mass", false, BenefitPolicy::kScoreMassQuantile},
  };

  std::vector<JsonValue> rows;
  for (uint64_t budget_kbits : {16u, 48u, 128u}) {
    uint64_t budget_bits = budget_kbits * 1024;
    for (const Variant& variant : variants) {
      auto frags = SplitIntoFragments(corpus, 40);
      if (!frags.ok()) return 1;
      auto collections = SlidingWindowCollections(frags.value(), 6, 2, 20);
      if (!collections.ok()) return 1;

      // MIPs (the only heterogeneous-length type)
      minerva::EngineOptions options;
      auto engine =
          minerva::Engine::Create(options, std::move(collections).value());
      if (!engine.ok()) return 1;

      uint64_t bytes_before = engine.value()->TotalBytesSent();
      for (size_t p = 0; p < engine.value()->num_peers(); ++p) {
        AdaptiveAllocationOptions a;
        a.policy = variant.policy;
        a.granularity_bits = 32;
        if (variant.uniform) {
          // Equal share for every term under the same total budget.
          size_t num_terms =
              std::max<size_t>(1, engine.value()->peer(p).index().NumTerms());
          uint64_t share = budget_bits / num_terms / 32 * 32;
          if (share < 32) share = 32;
          a.min_bits = share;
          a.max_bits = share;
          a.granularity_bits = 32;
        } else {
          a.min_bits = 32;
          a.max_bits = 4096;
        }
        Status published =
            engine.value()->peer(p).PublishPostsAdaptive(budget_bits, a);
        if (!published.ok()) {
          std::fprintf(stderr, "publish: %s\n", published.ToString().c_str());
          return 1;
        }
      }
      uint64_t posted_bytes = engine.value()->TotalBytesSent() - bytes_before;

      minerva::RoutingSpec routing;  // kIqn
      double recall = 0.0;
      size_t counted = 0;
      for (size_t qi = 0; qi < queries.value().size(); ++qi) {
        QueryOutcome outcome;
        if (!engine.value()
                 ->RunQueryWith(routing, qi % engine.value()->num_peers(),
                                queries.value()[qi], max_peers, &outcome)
                 .ok()) {
          continue;
        }
        recall += outcome.recall_remote_only;
        ++counted;
      }
      if (counted > 0) recall /= static_cast<double>(counted);
      std::printf("%5lu kbit    %-26s %14lu %9.1f%%\n",
                  static_cast<unsigned long>(budget_kbits),
                  variant.label.c_str(),
                  static_cast<unsigned long>(posted_bytes), recall * 100.0);
      rows.push_back(JsonValue::Object(
          {{"budget_kbits",
            JsonValue::Number(static_cast<double>(budget_kbits))},
           {"allocation", JsonValue::String(variant.label)},
           {"posted_bytes",
            JsonValue::Number(static_cast<double>(posted_bytes))},
           {"recall", JsonValue::Number(recall)}}));
    }
    std::printf("\n");
  }
  std::printf(
      "(benefit-proportional allocation spends long synopses on long index "
      "lists — where estimation error actually costs recall — and shortens "
      "or drops negligible terms)\n");

  BenchReport report(
      "ablation_adaptive",
      JsonValue::Object(
          {{"docs", JsonValue::Number(static_cast<double>(docs))},
           {"queries",
            JsonValue::Number(static_cast<double>(num_queries))},
           {"peers", JsonValue::Number(static_cast<double>(max_peers))},
           {"seed", JsonValue::Number(static_cast<double>(seed))}}));
  report.AddSection("results", JsonValue::Array(std::move(rows)));
  const std::string& out = flags.GetString("out");
  if (Status w = report.WriteFile(out); !w.ok()) {
    std::fprintf(stderr, "%s\n", w.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace iqn

int main(int argc, char** argv) { return iqn::Main(argc, argv); }

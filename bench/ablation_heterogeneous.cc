// ABL-HET — paper Sections 3.4 / 5.3: MIPs with heterogeneous vector
// lengths.
//
// Two peers may post MIPs of different lengths; estimation proceeds over
// the common prefix min(N1, N2). This bench quantifies the accuracy cost:
// mean relative resemblance error for every (N1, N2) combination, showing
// that (a) mixing lengths works at all (Bloom filters and hash sketches
// simply refuse), and (b) the error is governed by min(N1, N2).
//
// Usage: ablation_heterogeneous [--runs=30] [--size=5000]

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "synopses/estimators.h"
#include "synopses/min_wise.h"
#include "util/bench_report.h"
#include "util/flags.h"
#include "util/json_value.h"
#include "util/random.h"
#include "workload/overlap_sets.h"

namespace iqn {
namespace {

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("runs", 30, "set pairs per cell");
  flags.DefineInt("size", 5000, "collection size");
  flags.DefineDouble("resemblance", 1.0 / 3.0, "target resemblance");
  flags.DefineString("out", "BENCH_ablation_heterogeneous.json",
                     "bench report JSON path");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 1;
  }
  int runs = static_cast<int>(flags.GetInt("runs"));
  size_t size = static_cast<size_t>(flags.GetInt("size"));
  double target = flags.GetDouble("resemblance");

  const std::vector<size_t> lengths = {8, 16, 32, 64, 128};
  UniversalHashFamily family(0x48455445524f4742ULL);

  std::printf(
      "\n=== Ablation (Sec. 5.3): MIPs resemblance error under "
      "heterogeneous vector lengths ===\n");
  std::printf("(%zu-element sets, target resemblance %.0f%%, %d runs; rows "
              "= N1, columns = N2)\n\n",
              size, target * 100, runs);
  std::printf("%-8s", "N1\\N2");
  for (size_t n2 : lengths) std::printf("%10zu", n2);
  std::printf("\n");

  std::vector<JsonValue> rows;
  for (size_t n1 : lengths) {
    std::printf("%-8zu", n1);
    std::vector<JsonValue::Member> row;
    row.emplace_back("n1", JsonValue::Number(static_cast<double>(n1)));
    for (size_t n2 : lengths) {
      Rng rng(n1 * 1000 + n2);
      double total_error = 0.0;
      int counted = 0;
      for (int run = 0; run < runs; ++run) {
        auto pair = MakeSetsWithResemblance(size, target, &rng);
        if (!pair.ok()) continue;
        auto syn_a = MinWiseSynopsis::Create(n1, family);
        auto syn_b = MinWiseSynopsis::Create(n2, family);
        if (!syn_a.ok() || !syn_b.ok()) continue;
        for (DocId id : pair.value().a) syn_a.value().Add(id);
        for (DocId id : pair.value().b) syn_b.value().Add(id);
        auto est = syn_a.value().EstimateResemblance(syn_b.value());
        if (!est.ok()) continue;
        double truth = ExactResemblance(pair.value().a, pair.value().b);
        if (truth <= 0.0) continue;
        total_error += std::abs(est.value() - truth) / truth;
        ++counted;
      }
      double mean_error = counted > 0 ? total_error / counted : -1.0;
      std::printf("%10.3f", mean_error);
      row.emplace_back("n2_" + std::to_string(n2),
                       JsonValue::Number(mean_error));
    }
    std::printf("\n");
    rows.push_back(JsonValue::Object(std::move(row)));
  }
  std::printf(
      "\n(error along a row stops improving once N2 exceeds N1: accuracy "
      "is set by the common prefix min(N1, N2))\n");

  BenchReport report(
      "ablation_heterogeneous",
      JsonValue::Object(
          {{"runs", JsonValue::Number(static_cast<double>(runs))},
           {"size", JsonValue::Number(static_cast<double>(size))},
           {"resemblance", JsonValue::Number(target)}}));
  report.AddSection("results", JsonValue::Array(std::move(rows)));
  const std::string& out = flags.GetString("out");
  if (Status w = report.WriteFile(out); !w.ok()) {
    std::fprintf(stderr, "%s\n", w.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace iqn

int main(int argc, char** argv) { return iqn::Main(argc, argv); }

// TAB-SYN — microbenchmarks of the synopsis operations (google-benchmark),
// quantifying the qualitative comparison of paper Section 3.4: build
// cost, union/intersection cost, resemblance estimation cost, and
// serialized size for each synopsis type at the paper's 2048-bit budget.

#include <benchmark/benchmark.h>

#include <memory>

#include "synopses/bloom_filter.h"
#include "synopses/estimators.h"
#include "synopses/hash_sketch.h"
#include "synopses/loglog.h"
#include "synopses/min_wise.h"
#include "synopses/serialization.h"
#include "util/random.h"

namespace iqn {
namespace {

constexpr uint64_t kSeed = 99;

std::unique_ptr<SetSynopsis> Make(SynopsisType type) {
  switch (type) {
    case SynopsisType::kMinWise: {
      auto r = MinWiseSynopsis::Create(64, UniversalHashFamily(kSeed));
      return std::make_unique<MinWiseSynopsis>(std::move(r).value());
    }
    case SynopsisType::kBloomFilter: {
      auto r = BloomFilter::Create(2048, 4, kSeed);
      return std::make_unique<BloomFilter>(std::move(r).value());
    }
    case SynopsisType::kHashSketch: {
      auto r = HashSketch::Create(32, 64, kSeed);
      return std::make_unique<HashSketch>(std::move(r).value());
    }
    case SynopsisType::kLogLog: {
      auto r = LogLogCounter::Create(256, kSeed);
      return std::make_unique<LogLogCounter>(std::move(r).value());
    }
  }
  return nullptr;
}

std::unique_ptr<SetSynopsis> MakeFilled(SynopsisType type, size_t n,
                                        uint64_t salt) {
  auto syn = Make(type);
  Rng rng(salt);
  for (size_t i = 0; i < n; ++i) syn->Add(rng.Next());
  return syn;
}

void BM_Build(benchmark::State& state) {
  auto type = static_cast<SynopsisType>(state.range(0));
  size_t n = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    auto syn = MakeFilled(type, n, 7);
    benchmark::DoNotOptimize(syn);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

void BM_Union(benchmark::State& state) {
  auto type = static_cast<SynopsisType>(state.range(0));
  auto a = MakeFilled(type, 5000, 1);
  auto b = MakeFilled(type, 5000, 2);
  for (auto _ : state) {
    auto merged = a->Clone();
    benchmark::DoNotOptimize(merged->MergeUnion(*b));
  }
}

void BM_Resemblance(benchmark::State& state) {
  auto type = static_cast<SynopsisType>(state.range(0));
  auto a = MakeFilled(type, 5000, 1);
  auto b = MakeFilled(type, 5000, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a->EstimateResemblance(*b));
  }
}

void BM_EstimateCardinality(benchmark::State& state) {
  auto type = static_cast<SynopsisType>(state.range(0));
  auto a = MakeFilled(type, 5000, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a->EstimateCardinality());
  }
}

void BM_NoveltyEstimation(benchmark::State& state) {
  auto type = static_cast<SynopsisType>(state.range(0));
  auto ref = MakeFilled(type, 5000, 1);
  auto cand = MakeFilled(type, 5000, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateNovelty(*ref, 5000, *cand, 5000));
  }
}

void BM_Serialize(benchmark::State& state) {
  auto type = static_cast<SynopsisType>(state.range(0));
  auto a = MakeFilled(type, 5000, 1);
  size_t bytes = 0;
  for (auto _ : state) {
    Bytes wire = SerializeSynopsisToBytes(*a);
    bytes = wire.size();
    benchmark::DoNotOptimize(wire);
  }
  state.counters["wire_bytes"] = static_cast<double>(bytes);
}

void BM_Deserialize(benchmark::State& state) {
  auto type = static_cast<SynopsisType>(state.range(0));
  Bytes wire = SerializeSynopsisToBytes(*MakeFilled(type, 5000, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DeserializeSynopsisFromBytes(wire));
  }
}

void TypeArgs(benchmark::internal::Benchmark* bench) {
  for (SynopsisType type :
       {SynopsisType::kMinWise, SynopsisType::kBloomFilter,
        SynopsisType::kHashSketch, SynopsisType::kLogLog}) {
    bench->Arg(static_cast<int>(type));
  }
}

void BuildArgs(benchmark::internal::Benchmark* bench) {
  for (SynopsisType type :
       {SynopsisType::kMinWise, SynopsisType::kBloomFilter,
        SynopsisType::kHashSketch, SynopsisType::kLogLog}) {
    for (int n : {1000, 10000}) {
      bench->Args({static_cast<int>(type), n});
    }
  }
}

BENCHMARK(BM_Build)->Apply(BuildArgs);
BENCHMARK(BM_Union)->Apply(TypeArgs);
BENCHMARK(BM_Resemblance)->Apply(TypeArgs);
BENCHMARK(BM_EstimateCardinality)->Apply(TypeArgs);
BENCHMARK(BM_NoveltyEstimation)->Apply(TypeArgs);
BENCHMARK(BM_Serialize)->Apply(TypeArgs);
BENCHMARK(BM_Deserialize)->Apply(TypeArgs);

}  // namespace
}  // namespace iqn

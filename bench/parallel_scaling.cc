// BENCH-PAR: batch query throughput vs worker threads.
//
// Runs a Fig. 3-style workload (sliding-window collections, banded
// multi-term queries, rotating initiators) through RunQueryBatch at
// 1/2/4/8 threads and writes BENCH_parallel.json.
//
// Two views are reported per thread count, and the distinction matters:
//
//  * wall_*  — measured wall-clock time of the batch on THIS host. This
//    is the honest hardware number; on a single-core container it cannot
//    exceed 1x no matter how good the parallelization is.
//  * sim_*   — deterministic latency-overlap model: each query's service
//    time is its simulated network latency (routing_latency_ms +
//    execution_latency_ms, identical for every thread count because batch
//    outcomes are bit-identical to serial), and queries are greedily
//    list-scheduled in batch order onto T workers; sim_makespan_ms is the
//    resulting makespan. This measures how much of the workload's latency
//    the batch engine can overlap, independent of host core count.
//
// The headline "qps"/"speedup" fields are the simulated-overlap view;
// wall_* sits alongside for the hardware truth. p50/p99 are per-query
// service-time percentiles (thread-count independent by determinism).
//
// The bench also cross-checks determinism: outcomes at every thread count
// must equal the 1-thread outcomes, else it aborts.
//
// Usage: parallel_scaling [--docs=3000] [--peers=20] [--queries=48]
//                         [--k=50] [--max_peers=3] [--repeats=3]
//                         [--threads=1,2,4,8] [--seed=42]
//                         [--out=BENCH_parallel.json]
//
// --threads takes a comma-separated sweep; 1 is always prepended if
// missing so speedups have their serial baseline.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "minerva/api.h"
#include "util/bench_report.h"
#include "util/flags.h"
#include "util/metrics.h"
#include "util/trace.h"
#include "util/thread_pool.h"
#include "workload/fragments.h"
#include "workload/queries.h"
#include "workload/synthetic_corpus.h"

namespace iqn {
namespace {

using BatchQuery = minerva::Engine::BatchQuery;

struct BenchConfig {
  size_t docs = 3000;
  size_t peers = 20;
  size_t queries = 48;
  size_t k = 50;
  size_t max_peers = 3;
  size_t repeats = 3;
  uint64_t seed = 42;
  std::vector<size_t> threads = {1, 2, 4, 8};
  std::string out = "BENCH_parallel.json";
  std::string trace_out;    // Chrome trace of the serial baseline batch
  std::string metrics_out;  // standalone metrics snapshot JSON
};

/// "1,2,4,8" -> {1,2,4,8}; a missing leading 1 is prepended so the
/// serial baseline always exists.
std::vector<size_t> ParseThreadSweep(const std::string& spec) {
  std::vector<size_t> sweep;
  size_t value = 0;
  bool have_digit = false;
  for (char c : spec) {
    if (c >= '0' && c <= '9') {
      value = value * 10 + static_cast<size_t>(c - '0');
      have_digit = true;
    } else if (c == ',') {
      if (have_digit && value > 0) sweep.push_back(value);
      value = 0;
      have_digit = false;
    } else {
      std::fprintf(stderr, "bad --threads spec: %s\n", spec.c_str());
      std::exit(1);
    }
  }
  if (have_digit && value > 0) sweep.push_back(value);
  if (sweep.empty() || sweep.front() != 1) {
    sweep.insert(sweep.begin(), 1);
  }
  return sweep;
}

std::vector<Corpus> BuildCollections(const BenchConfig& config,
                                     std::vector<Query>* queries) {
  SyntheticCorpusOptions corpus_opts;
  corpus_opts.num_documents = config.docs;
  corpus_opts.vocabulary_size = config.docs / 8;
  corpus_opts.min_document_length = 30;
  corpus_opts.max_document_length = 100;
  corpus_opts.seed = config.seed;
  auto gen = SyntheticCorpusGenerator::Create(corpus_opts);
  if (!gen.ok()) {
    std::fprintf(stderr, "corpus: %s\n", gen.status().ToString().c_str());
    std::exit(1);
  }
  Corpus corpus = gen.value().Generate();
  auto frags = SplitIntoFragments(corpus, config.peers * 2);
  if (!frags.ok()) {
    std::fprintf(stderr, "fragments: %s\n",
                 frags.status().ToString().c_str());
    std::exit(1);
  }
  auto collections = SlidingWindowCollections(frags.value(), /*window=*/3,
                                              /*offset=*/2, config.peers);
  if (!collections.ok()) {
    std::fprintf(stderr, "collections: %s\n",
                 collections.status().ToString().c_str());
    std::exit(1);
  }

  QueryWorkloadOptions q_opts;
  q_opts.num_queries = config.queries;
  q_opts.min_terms = 2;
  q_opts.max_terms = 3;
  q_opts.band_low = 0.005;
  q_opts.band_high = 0.10;
  q_opts.k = config.k;
  q_opts.seed = config.seed + 1;
  auto generated = GenerateQueries(gen.value().vocabulary(), q_opts);
  if (!generated.ok()) {
    std::fprintf(stderr, "queries: %s\n",
                 generated.status().ToString().c_str());
    std::exit(1);
  }
  *queries = std::move(generated).value();
  return std::move(collections).value();
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

/// Greedy list-scheduling of the per-query service times, in batch order,
/// onto `threads` workers (each query goes to the least-loaded worker —
/// exactly what a work-stealing batch over grain-1 chunks converges to).
/// Returns the makespan in milliseconds.
double SimulatedMakespanMs(const std::vector<double>& service_ms,
                           size_t threads) {
  std::vector<double> worker_ms(threads, 0.0);
  for (double s : service_ms) {
    size_t argmin = 0;
    for (size_t w = 1; w < threads; ++w) {
      if (worker_ms[w] < worker_ms[argmin]) argmin = w;
    }
    worker_ms[argmin] += s;
  }
  double makespan = 0.0;
  for (double w : worker_ms) makespan = std::max(makespan, w);
  return makespan;
}

bool SameOutcomes(const std::vector<QueryOutcome>& a,
                  const std::vector<QueryOutcome>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].decision.peers.size() != b[i].decision.peers.size()) return false;
    for (size_t p = 0; p < a[i].decision.peers.size(); ++p) {
      if (a[i].decision.peers[p].peer_id != b[i].decision.peers[p].peer_id ||
          a[i].decision.peers[p].combined != b[i].decision.peers[p].combined) {
        return false;
      }
    }
    if (a[i].recall != b[i].recall ||
        a[i].routing_latency_ms != b[i].routing_latency_ms ||
        a[i].execution_latency_ms != b[i].execution_latency_ms ||
        !(a[i].execution.merged == b[i].execution.merged)) {
      return false;
    }
  }
  return true;
}

struct ThreadResult {
  size_t threads = 0;
  double wall_ms = 0.0;
  double sim_makespan_ms = 0.0;
};

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("docs", 3000, "corpus size in documents");
  flags.DefineInt("peers", 20, "number of peers (sliding-window split)");
  flags.DefineInt("queries", 48, "batch size (number of queries)");
  flags.DefineInt("k", 50, "top-k per query");
  flags.DefineInt("max_peers", 3, "remote peers contacted per query");
  flags.DefineInt("repeats", 3, "timed repetitions (best run kept)");
  flags.DefineString("threads", "1,2,4,8",
                     "comma-separated worker-thread sweep; 1 is prepended "
                     "if absent (serial baseline)");
  flags.DefineInt("seed", 42, "workload seed");
  flags.DefineString("out", "BENCH_parallel.json", "output JSON path");
  flags.DefineString("trace_out", "",
                     "write a Chrome trace_event JSON of the serial "
                     "baseline batch to this path (enables tracing)");
  flags.DefineString("metrics_out", "",
                     "write the metrics registry snapshot JSON to this "
                     "path (always embedded in --out as well)");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 1;
  }
  BenchConfig config;
  config.docs = static_cast<size_t>(flags.GetInt("docs"));
  config.peers = static_cast<size_t>(flags.GetInt("peers"));
  config.queries = static_cast<size_t>(flags.GetInt("queries"));
  config.k = static_cast<size_t>(flags.GetInt("k"));
  config.max_peers = static_cast<size_t>(flags.GetInt("max_peers"));
  config.repeats = static_cast<size_t>(flags.GetInt("repeats"));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  config.threads = ParseThreadSweep(flags.GetString("threads"));
  config.out = flags.GetString("out");
  config.trace_out = flags.GetString("trace_out");
  config.metrics_out = flags.GetString("metrics_out");

  std::vector<Query> queries;
  std::vector<Corpus> collections = BuildCollections(config, &queries);
  minerva::EngineOptions options;  // IQN routing by default
  options.core.collect_traces = !config.trace_out.empty();
  options.max_peers = config.max_peers;
  auto engine = minerva::Engine::Create(options, std::move(collections));
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  minerva::Engine& e = *engine.value();
  if (Status published = e.Publish(); !published.ok()) {
    std::fprintf(stderr, "publish: %s\n", published.ToString().c_str());
    return 1;
  }

  std::vector<BatchQuery> batch(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    batch[i].initiator_index = i % e.num_peers();
    batch[i].query = queries[i];
  }
  // Snapshot only the query phase: setup (publishing) traffic is not
  // what this bench measures.
  MetricsRegistry::Default().Reset();

  std::printf("parallel_scaling: %zu queries x %zu peers, max_peers=%zu, "
              "host hardware threads=%zu\n",
              batch.size(), e.num_peers(), config.max_peers,
              ThreadPool::DefaultConcurrency());

  std::vector<ThreadResult> results;
  std::vector<QueryOutcome> baseline;
  std::vector<double> service_ms;
  for (size_t threads : config.threads) {
    double best_ms = 0.0;
    std::vector<QueryOutcome> outcomes;
    for (size_t rep = 0; rep < config.repeats; ++rep) {
      auto start = std::chrono::steady_clock::now();
      std::vector<QueryOutcome> run_outcomes;
      Status run = e.RunQueryBatchWith(options.routing, batch,
                                       config.max_peers, threads,
                                       &run_outcomes);
      auto stop = std::chrono::steady_clock::now();
      if (!run.ok()) {
        std::fprintf(stderr, "batch(%zu threads): %s\n", threads,
                     run.ToString().c_str());
        return 1;
      }
      double ms = std::chrono::duration<double, std::milli>(stop - start)
                      .count();
      if (rep == 0 || ms < best_ms) best_ms = ms;
      outcomes = std::move(run_outcomes);
    }
    if (threads == 1) {
      baseline = outcomes;
      service_ms.reserve(baseline.size());
      for (const QueryOutcome& o : baseline) {
        service_ms.push_back(o.routing_latency_ms + o.execution_latency_ms);
      }
    } else if (!SameOutcomes(baseline, outcomes)) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: %zu-thread outcomes differ from "
                   "serial\n",
                   threads);
      return 1;
    }
    ThreadResult r;
    r.threads = threads;
    r.wall_ms = best_ms;
    r.sim_makespan_ms = SimulatedMakespanMs(service_ms, threads);
    results.push_back(r);
    std::printf("  threads=%zu  wall=%8.1f ms  sim_makespan=%9.1f ms\n",
                threads, r.wall_ms, r.sim_makespan_ms);
  }

  std::vector<double> sorted_service = service_ms;
  std::sort(sorted_service.begin(), sorted_service.end());
  double p50 = Percentile(sorted_service, 0.50);
  double p99 = Percentile(sorted_service, 0.99);
  double n = static_cast<double>(batch.size());

  LegacyReportWriter writer;
  FILE* out = writer.stream();
  if (out == nullptr) {
    std::fprintf(stderr, "cannot buffer bench JSON\n");
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"parallel_scaling\",\n");
  std::fprintf(out,
               "  \"workload\": {\"docs\": %zu, \"peers\": %zu, "
               "\"queries\": %zu, \"k\": %zu, \"max_peers\": %zu, "
               "\"seed\": %llu},\n",
               config.docs, config.peers, config.queries, config.k,
               config.max_peers,
               static_cast<unsigned long long>(config.seed));
  std::fprintf(out, "  \"host_hardware_threads\": %zu,\n",
               ThreadPool::DefaultConcurrency());
  std::fprintf(out,
               "  \"metric_note\": \"qps/speedup use the deterministic "
               "latency-overlap model (greedy list-scheduling of per-query "
               "simulated service times onto T workers); wall_* are "
               "measured on this host and are bounded by its core "
               "count\",\n");
  std::fprintf(out, "  \"latency_ms\": {\"p50\": %.6f, \"p99\": %.6f},\n",
               p50, p99);
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ThreadResult& r = results[i];
    double sim_qps = n * 1000.0 / r.sim_makespan_ms;
    double sim_speedup = results[0].sim_makespan_ms / r.sim_makespan_ms;
    double wall_qps = n * 1000.0 / r.wall_ms;
    double wall_speedup = results[0].wall_ms / r.wall_ms;
    std::fprintf(out,
                 "    {\"threads\": %zu, \"qps\": %.2f, \"speedup\": %.3f, "
                 "\"sim_makespan_ms\": %.3f, \"wall_ms\": %.3f, "
                 "\"wall_qps\": %.2f, \"wall_speedup\": %.3f}%s\n",
                 r.threads, sim_qps, sim_speedup, r.sim_makespan_ms,
                 r.wall_ms, wall_qps, wall_speedup,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  MetricsSnapshot snapshot = MetricsRegistry::Default().Snapshot();
  std::string metrics_json = snapshot.ToJson();
  std::fprintf(out, "  \"metrics\": %s", metrics_json.c_str());
  std::fprintf(out, "}\n");
  if (Status w = writer.Finish(config.out); !w.ok()) {
    std::fprintf(stderr, "%s\n", w.ToString().c_str());
    return 1;
  }
  if (!config.metrics_out.empty()) {
    if (Status w = WriteTextFile(config.metrics_out, metrics_json); !w.ok()) {
      std::fprintf(stderr, "%s\n", w.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", config.metrics_out.c_str());
  }
  if (!config.trace_out.empty()) {
    std::vector<const QueryTrace*> traces;
    for (const QueryOutcome& o : baseline) traces.push_back(o.trace.get());
    if (Status w = WriteChromeTraceFile(config.trace_out, traces); !w.ok()) {
      std::fprintf(stderr, "%s\n", w.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu query traces)\n", config.trace_out.c_str(),
                traces.size());
  }
  std::printf("wrote %s (p50=%.1f ms, p99=%.1f ms per query)\n",
              config.out.c_str(), p50, p99);
  return 0;
}

}  // namespace
}  // namespace iqn

int main(int argc, char** argv) { return iqn::Main(argc, argv); }

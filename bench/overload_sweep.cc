// BENCH-OVR: goodput under overloaded peers, with and without the
// resilience defenses (circuit breakers, hedged RPCs, brownout).
//
// Sweeps the overloaded-peer fraction over the overload_brownout
// workload and runs every point twice through the scenario harness
// (minerva/scenario.h): once with the defenses off and once with the
// full stack on (per-peer health tracking + open-circuit routing
// skips, hedged backup requests, deadline-pressure brownout). The
// headline metric is GOODPUT — recall-within-deadline: a query only
// pays out its recall when its simulated latency met the engine
// deadline, so a slow answer is as worthless as a wrong one.
//
// Determinism is checked harder than in the other sweeps: every point
// is executed twice end to end on fresh engines AND re-executed at 1,
// 2, and 8 worker threads; all fingerprints must agree bit-for-bit
// (the circuit breaker, hedge decisions, and the simulated commit-point
// clock are pure functions of seed + commit order, never wall-clock).
//
// The ISSUE acceptance bound is checked at exit: at a 20% overloaded
// fraction the defended engine must recover at least half of the
// goodput the undefended engine lost against the overload-free
// baseline (non-zero status on violation, so CI can gate on it).
//
// Usage: overload_sweep [--fractions=0,0.1,0.2,0.3]
//          [--utilization=0.9] [--shed_rate=0.2] [--deadline_ms=90]
//          [--out=BENCH_overload.json]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "minerva/scenario.h"
#include "util/bench_report.h"
#include "util/flags.h"

namespace iqn {
namespace {

std::vector<double> ParseFractions(const std::string& spec) {
  std::vector<double> fractions;
  std::string token;
  auto flush = [&] {
    if (!token.empty()) {
      fractions.push_back(std::strtod(token.c_str(), nullptr));
      token.clear();
    }
  };
  for (char c : spec) {
    if (c == ',') {
      flush();
    } else {
      token.push_back(c);
    }
  }
  flush();
  if (fractions.empty() || fractions.front() != 0.0) {
    fractions.insert(fractions.begin(), 0.0);  // overload-free baseline
  }
  return fractions;
}

/// The overload workload as a scenario spec — the same shape the
/// checked-in scenarios/overload_brownout.json canonicalizes, minus the
/// point-dependent knobs (fraction, defenses) RunPoint sets.
minerva::ScenarioSpec BaseSpec(double utilization, double shed_rate,
                               double deadline_ms) {
  minerva::ScenarioSpec spec;
  spec.name = "overload_sweep";
  spec.topology.peers = 15;
  spec.engine.retries = 3;
  spec.engine.deadline_ms = deadline_ms;
  spec.queries.batch_size = 8;
  spec.faults.overload.utilization = utilization;
  spec.faults.overload.service_ms = 5.0;
  spec.faults.overload.shed_rate = shed_rate;
  return spec;
}

void ApplyDefenses(minerva::ScenarioSpec* spec, bool defended) {
  spec->health.enabled = defended;
  spec->health.error_threshold = 0.4;
  spec->health.latency_threshold_ms = 60.0;
  spec->health.cooldown_ms = 2500.0;
  spec->health.brownout_threshold = defended ? 0.25 : 0.0;
  spec->hedging.enabled = defended;
  spec->hedging.threshold_ms = 25.0;
}

struct SweepPoint {
  double fraction = 0.0;
  bool defended = false;
  size_t overloaded = 0;
  double mean_recall = 0.0;
  double mean_goodput = 0.0;
  uint64_t deadline_misses = 0;
  uint64_t hedges = 0;
  uint64_t hedges_won = 0;
  uint64_t circuit_open_skips = 0;
  double sim_time_ms = 0.0;
  uint64_t bytes = 0;
  uint64_t result_fingerprint = 0;
};

/// Runs one (fraction, defended) point on fresh engines: twice at the
/// spec's thread count (rerun identity), then once each at 1, 2, and 8
/// worker threads (thread-count identity). Any fingerprint disagreement
/// aborts the sweep — the whole resilience layer must stay a pure
/// function of (seed, simulated time, commit order).
SweepPoint RunPoint(const minerva::ScenarioSpec& base, double fraction,
                    bool defended) {
  minerva::ScenarioSpec spec = base;
  spec.faults.overload.fraction = fraction;
  ApplyDefenses(&spec, defended);

  minerva::ScenarioResult result;
  for (int pass = 0; pass < 2; ++pass) {
    auto run = minerva::RunScenario(spec);
    if (!run.ok()) {
      std::fprintf(stderr, "scenario (fraction=%.2f defended=%d): %s\n",
                   fraction, defended ? 1 : 0,
                   run.status().ToString().c_str());
      std::exit(1);
    }
    if (pass == 0) {
      result = std::move(run).value();
    } else if (run.value().result_fingerprint != result.result_fingerprint) {
      std::fprintf(stderr,
                   "FAIL: rerun fingerprint mismatch at fraction=%.2f "
                   "defended=%d (%016llx vs %016llx)\n",
                   fraction, defended ? 1 : 0,
                   static_cast<unsigned long long>(result.result_fingerprint),
                   static_cast<unsigned long long>(
                       run.value().result_fingerprint));
      std::exit(1);
    }
  }
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    minerva::ScenarioSpec threaded = spec;
    threaded.engine.threads = threads;
    auto run = minerva::RunScenario(threaded);
    if (!run.ok()) {
      std::fprintf(stderr, "scenario (%zu threads): %s\n", threads,
                   run.status().ToString().c_str());
      std::exit(1);
    }
    if (run.value().result_fingerprint != result.result_fingerprint) {
      std::fprintf(stderr,
                   "FAIL: %zu-thread fingerprint mismatch at fraction=%.2f "
                   "defended=%d (%016llx vs %016llx)\n",
                   threads, fraction, defended ? 1 : 0,
                   static_cast<unsigned long long>(result.result_fingerprint),
                   static_cast<unsigned long long>(
                       run.value().result_fingerprint));
      std::exit(1);
    }
  }

  SweepPoint point;
  point.fraction = fraction;
  point.defended = defended;
  point.overloaded = result.overloaded_peers.size();
  point.mean_recall = result.mean_recall;
  point.mean_goodput = result.mean_goodput;
  point.deadline_misses = result.deadline_misses;
  point.hedges = result.hedges;
  point.hedges_won = result.hedges_won;
  point.circuit_open_skips = result.circuit_open_skips;
  point.sim_time_ms = result.sim_time_ms;
  point.bytes = result.bytes;
  point.result_fingerprint = result.result_fingerprint;
  return point;
}

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineString("fractions", "0,0.1,0.2,0.3",
                     "comma-separated overloaded peer fractions; 0 is "
                     "prepended if absent (healthy baseline)");
  flags.DefineDouble("utilization", 0.9,
                     "M/M/1 utilization of overloaded peers, in [0, 1)");
  flags.DefineDouble("shed_rate", 0.2,
                     "request share overloaded peers shed outright");
  flags.DefineDouble("deadline_ms", 90.0,
                     "per-query simulated deadline goodput is scored "
                     "against");
  flags.DefineString("out", "BENCH_overload.json", "output JSON path");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 1;
  }
  std::vector<double> fractions = ParseFractions(flags.GetString("fractions"));
  const double utilization = flags.GetDouble("utilization");
  const double shed_rate = flags.GetDouble("shed_rate");
  const double deadline_ms = flags.GetDouble("deadline_ms");
  const std::string out_path = flags.GetString("out");
  const minerva::ScenarioSpec base =
      BaseSpec(utilization, shed_rate, deadline_ms);

  std::printf("overload_sweep: %zu peers, rho=%.2f shed=%.2f, deadline=%.0f "
              "ms, %zu queries\n",
              base.topology.peers, utilization, shed_rate, deadline_ms,
              base.queries.pool);

  std::vector<SweepPoint> points;
  double baseline_goodput = 0.0;
  for (double fraction : fractions) {
    for (bool defended : {false, true}) {
      if (fraction == 0.0 && defended) continue;  // nothing to defend
      SweepPoint point = RunPoint(base, fraction, defended);
      if (fraction == 0.0) baseline_goodput = point.mean_goodput;
      std::printf("  fraction=%.2f %-10s overloaded=%zu  goodput=%.4f "
                  "(recall %.4f)  misses=%llu hedges=%llu/%llu skips=%llu\n",
                  point.fraction, defended ? "defended" : "undefended",
                  point.overloaded, point.mean_goodput, point.mean_recall,
                  static_cast<unsigned long long>(point.deadline_misses),
                  static_cast<unsigned long long>(point.hedges_won),
                  static_cast<unsigned long long>(point.hedges),
                  static_cast<unsigned long long>(point.circuit_open_skips));
      points.push_back(point);
    }
  }

  // Acceptance: at fraction 0.2 the defenses recover >= half the
  // goodput the undefended engine lost to the overload.
  double undefended_02 = -1.0;
  double defended_02 = -1.0;
  for (const SweepPoint& p : points) {
    if (p.fraction != 0.2) continue;
    (p.defended ? defended_02 : undefended_02) = p.mean_goodput;
  }
  bool gate_ok = true;
  double recovered_share = 0.0;
  if (undefended_02 >= 0.0 && defended_02 >= 0.0) {
    const double lost = baseline_goodput - undefended_02;
    recovered_share =
        lost > 0.0 ? (defended_02 - undefended_02) / lost : 1.0;
    gate_ok = recovered_share >= 0.5;
    std::printf("gate: fraction=0.20 lost=%.4f recovered=%.4f (%.0f%% of "
                "lost, need >=50%%) -> %s\n",
                lost, defended_02 - undefended_02, 100.0 * recovered_share,
                gate_ok ? "OK" : "FAIL");
  }

  LegacyReportWriter writer;
  FILE* out = writer.stream();
  if (out == nullptr) {
    std::fprintf(stderr, "cannot buffer bench JSON\n");
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"overload_sweep\",\n");
  std::fprintf(out,
               "  \"workload\": {\"peers\": %zu, \"queries\": %zu, "
               "\"k\": %zu, \"max_peers\": %zu, \"deadline_ms\": %.1f, "
               "\"utilization\": %.2f, \"shed_rate\": %.2f, "
               "\"seed\": %llu},\n",
               base.topology.peers, base.queries.pool, base.queries.k,
               base.engine.max_peers, deadline_ms, utilization, shed_rate,
               static_cast<unsigned long long>(base.seed));
  std::fprintf(out,
               "  \"metric_note\": \"goodput = recall-within-deadline (a "
               "late answer scores 0); each point runs twice on fresh "
               "engines and again at 1/2/8 worker threads, and all "
               "fingerprints must match; the gate requires the defenses "
               "(circuit breaker + hedging + brownout) to recover >= half "
               "the goodput lost to a 0.2 overloaded fraction\",\n");
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(out,
                 "    {\"fraction\": %.2f, \"defended\": %s, "
                 "\"overloaded_peers\": %zu, \"mean_recall\": %.6f, "
                 "\"mean_goodput\": %.6f, \"deadline_misses\": %llu, "
                 "\"hedges\": %llu, \"hedges_won\": %llu, "
                 "\"circuit_open_skips\": %llu, \"sim_time_ms\": %.3f, "
                 "\"bytes\": %llu, \"result_fingerprint\": \"%016llx\"}%s\n",
                 p.fraction, p.defended ? "true" : "false", p.overloaded,
                 p.mean_recall, p.mean_goodput,
                 static_cast<unsigned long long>(p.deadline_misses),
                 static_cast<unsigned long long>(p.hedges),
                 static_cast<unsigned long long>(p.hedges_won),
                 static_cast<unsigned long long>(p.circuit_open_skips),
                 p.sim_time_ms,
                 static_cast<unsigned long long>(p.bytes),
                 static_cast<unsigned long long>(p.result_fingerprint),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"gate\": {\"recovered_share\": %.6f, \"pass\": %s}\n",
               recovered_share, gate_ok ? "true" : "false");
  std::fprintf(out, "}\n");
  if (Status w = writer.Finish(out_path); !w.ok()) {
    std::fprintf(stderr, "%s\n", w.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return gate_ok ? 0 : 2;
}

}  // namespace
}  // namespace iqn

int main(int argc, char** argv) { return iqn::Main(argc, argv); }

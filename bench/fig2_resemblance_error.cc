// FIG2-L / FIG2-R — paper Figure 2: "Relative Error of Resemblance
// Estimation".
//
// Left chart:  error vs collection size, expected 33 % mutual overlap,
//              all synopses at a 2048-bit budget (MIPs-64, HSs-32,
//              BF-2048).
// Right chart: error vs mutual overlap (50 %, 33 %, 25 %, ..., 11 %) at a
//              fixed collection size.
//
// The paper's claims to reproduce: MIPs are accurate with low variance
// and size-independent error; hash sketches are robust but noisier; the
// 2048-bit Bloom filter overloads as collections grow and its error
// explodes.
//
// Usage: fig2_resemblance_error [--mode=size|overlap|all] [--runs=N]
//                               [--bits=2048] [--fixed_size=5000]

#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "synopses/bloom_filter.h"
#include "synopses/estimators.h"
#include "synopses/hash_sketch.h"
#include "synopses/loglog.h"
#include "synopses/min_wise.h"
#include "util/bench_report.h"
#include "util/flags.h"
#include "util/json_value.h"
#include "util/stats.h"
#include "util/random.h"
#include "workload/overlap_sets.h"

namespace iqn {
namespace {

struct Technique {
  std::string label;
  std::function<std::unique_ptr<SetSynopsis>()> make;
};

std::vector<Technique> MakeTechniques(size_t bits, uint64_t seed) {
  std::vector<Technique> techniques;
  size_t mips_n = bits / 32;
  techniques.push_back(
      {"MIPs " + std::to_string(mips_n), [mips_n, seed]() {
         auto r = MinWiseSynopsis::Create(mips_n, UniversalHashFamily(seed));
         return std::unique_ptr<SetSynopsis>(
             new MinWiseSynopsis(std::move(r).value()));
       }});
  size_t hs_bitmaps = bits / 64;
  techniques.push_back(
      {"HSs " + std::to_string(hs_bitmaps), [hs_bitmaps, seed]() {
         auto r = HashSketch::Create(hs_bitmaps, 64, seed);
         return std::unique_ptr<SetSynopsis>(
             new HashSketch(std::move(r).value()));
       }});
  techniques.push_back({"BF " + std::to_string(bits), [bits, seed]() {
                          auto r = BloomFilter::Create(bits, 4, seed);
                          return std::unique_ptr<SetSynopsis>(
                              new BloomFilter(std::move(r).value()));
                        }});
  // Bonus series beyond the paper's three: the super-LogLog counter it
  // cites as the space-optimized successor of hash sketches.
  size_t ll_buckets = 16;
  while (ll_buckets * 2 * LogLogCounter::kRegisterBits <= bits) {
    ll_buckets *= 2;
  }
  techniques.push_back(
      {"LL " + std::to_string(ll_buckets), [ll_buckets, seed]() {
         auto r = LogLogCounter::Create(ll_buckets, seed);
         return std::unique_ptr<SetSynopsis>(
             new LogLogCounter(std::move(r).value()));
       }});
  return techniques;
}

/// Relative error |estimate - truth| / truth over `runs` random set
/// pairs of size `size` with target resemblance `resemblance`. The paper
/// argues about both the mean and the variance of this error, so both
/// are collected.
RunningStats RelativeErrorStats(const Technique& technique, size_t size,
                                double resemblance, int runs, Rng* rng) {
  RunningStats stats;
  for (int run = 0; run < runs; ++run) {
    auto pair = MakeSetsWithResemblance(size, resemblance, rng);
    if (!pair.ok()) continue;
    double truth = ExactResemblance(pair.value().a, pair.value().b);
    if (truth <= 0.0) continue;
    auto syn_a = technique.make();
    auto syn_b = technique.make();
    for (DocId id : pair.value().a) syn_a->Add(id);
    for (DocId id : pair.value().b) syn_b->Add(id);
    auto est = syn_a->EstimateResemblance(*syn_b);
    if (!est.ok()) continue;
    stats.Add(std::abs(est.value() - truth) / truth);
  }
  return stats;
}

JsonValue RunSizeSweep(const std::vector<Technique>& techniques, int runs,
                       double resemblance) {
  std::printf(
      "\n=== Figure 2 (left): relative error vs collection size "
      "(expected %.0f%% mutual overlap, %d runs) ===\n",
      resemblance * 100, runs);
  std::printf("%-10s", "docs");
  for (const auto& t : techniques) std::printf("%17s", t.label.c_str());
  std::printf("   (mean +- stddev)\n");
  std::vector<JsonValue> rows;
  for (size_t size : {1000u, 2000u, 5000u, 10000u, 20000u, 40000u, 60000u}) {
    std::printf("%-10zu", size);
    std::vector<JsonValue::Member> row;
    row.emplace_back("docs", JsonValue::Number(static_cast<double>(size)));
    for (const auto& t : techniques) {
      Rng rng(size * 1315423911ULL + 1);  // same pairs for every technique
      RunningStats stats = RelativeErrorStats(t, size, resemblance, runs, &rng);
      std::printf("  %7.3f+-%6.3f", stats.Mean(), stats.StdDev());
      row.emplace_back(t.label,
                       JsonValue::Object(
                           {{"mean", JsonValue::Number(stats.Mean())},
                            {"stddev", JsonValue::Number(stats.StdDev())}}));
    }
    std::printf("\n");
    rows.push_back(JsonValue::Object(std::move(row)));
  }
  return JsonValue::Object(
      {{"chart", JsonValue::String("size_sweep")},
       {"resemblance", JsonValue::Number(resemblance)},
       {"rows", JsonValue::Array(std::move(rows))}});
}

JsonValue RunOverlapSweep(const std::vector<Technique>& techniques, int runs,
                          size_t fixed_size) {
  std::printf(
      "\n=== Figure 2 (right): relative error vs mutual overlap "
      "(fixed collection size %zu, %d runs) ===\n",
      fixed_size, runs);
  std::printf("%-10s", "overlap");
  for (const auto& t : techniques) std::printf("%17s", t.label.c_str());
  std::printf("   (mean +- stddev)\n");
  // The paper's x-axis: 50 %, 33 %, 25 %, 20 %, 17 %, 14 %, 13 %, 11 %
  // = 1/k for k = 2..9.
  std::vector<JsonValue> rows;
  for (int k = 2; k <= 9; ++k) {
    double resemblance = 1.0 / k;
    std::printf("%9.0f%%", resemblance * 100);
    std::vector<JsonValue::Member> row;
    row.emplace_back("overlap", JsonValue::Number(resemblance));
    for (const auto& t : techniques) {
      Rng rng(k * 2654435761ULL + 7);
      RunningStats stats =
          RelativeErrorStats(t, fixed_size, resemblance, runs, &rng);
      std::printf("  %7.3f+-%6.3f", stats.Mean(), stats.StdDev());
      row.emplace_back(t.label,
                       JsonValue::Object(
                           {{"mean", JsonValue::Number(stats.Mean())},
                            {"stddev", JsonValue::Number(stats.StdDev())}}));
    }
    std::printf("\n");
    rows.push_back(JsonValue::Object(std::move(row)));
  }
  return JsonValue::Object(
      {{"chart", JsonValue::String("overlap_sweep")},
       {"fixed_size", JsonValue::Number(static_cast<double>(fixed_size))},
       {"rows", JsonValue::Array(std::move(rows))}});
}

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineString("mode", "all", "size | overlap | all");
  flags.DefineInt("runs", 20, "random set pairs per data point");
  flags.DefineInt("bits", 2048, "synopsis budget in bits");
  flags.DefineInt("fixed_size", 5000,
                  "collection size for the overlap sweep");
  flags.DefineDouble("resemblance", 1.0 / 3.0,
                     "target resemblance for the size sweep");
  flags.DefineString("out", "BENCH_fig2_resemblance_error.json",
                     "bench report JSON path");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 1;
  }

  auto techniques = MakeTechniques(static_cast<size_t>(flags.GetInt("bits")),
                                   /*seed=*/0x4649473243414c42ULL);
  int runs = static_cast<int>(flags.GetInt("runs"));
  std::string mode = flags.GetString("mode");
  std::vector<JsonValue> charts;
  if (mode == "size" || mode == "all") {
    charts.push_back(
        RunSizeSweep(techniques, runs, flags.GetDouble("resemblance")));
  }
  if (mode == "overlap" || mode == "all") {
    charts.push_back(RunOverlapSweep(
        techniques, runs, static_cast<size_t>(flags.GetInt("fixed_size"))));
  }

  BenchReport report(
      "fig2_resemblance_error",
      JsonValue::Object(
          {{"mode", JsonValue::String(mode)},
           {"runs", JsonValue::Number(static_cast<double>(runs))},
           {"bits",
            JsonValue::Number(static_cast<double>(flags.GetInt("bits")))},
           {"fixed_size",
            JsonValue::Number(
                static_cast<double>(flags.GetInt("fixed_size")))},
           {"resemblance",
            JsonValue::Number(flags.GetDouble("resemblance"))}}));
  report.AddSection("results", JsonValue::Array(std::move(charts)));
  const std::string& out = flags.GetString("out");
  if (Status w = report.WriteFile(out); !w.ok()) {
    std::fprintf(stderr, "%s\n", w.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace iqn

int main(int argc, char** argv) { return iqn::Main(argc, argv); }

// BENCH-CHAOS: recall and traffic overhead vs message drop rate.
//
// Sweeps a FaultPlan::MessageDrop rate over a Fig. 3-style workload and
// runs every query twice per rate: once with a single-attempt policy
// (no retries) and once with the configured retry budget. For each
// point it reports mean recall@k, the ratio against the fault-free
// baseline, query traffic (the retries' extra messages and bytes are
// the price of the recovered recall), and the degradation totals
// (faults survived, retries issued, peers failed/replaced, partial
// queries). Everything is driven by fixed seeds: the sweep is
// bit-reproducible, and the ISSUE acceptance bound — recall@k with
// retries within 5% of fault-free at a 10% drop rate — is checked at
// exit (non-zero status on violation, so CI can gate on it).
//
// Usage: recall_under_failure [--docs=2000] [--peers=15] [--queries=32]
//          [--k=10] [--max_peers=3] [--seed=42] [--fault-seed=7]
//          [--drop-rates=0,0.02,0.05,0.1,0.15,0.2] [--retries=3]
//          [--deadline-ms=0] [--out=BENCH_chaos.json]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "minerva/api.h"
#include "util/bench_report.h"
#include "util/flags.h"
#include "util/metrics.h"
#include "util/trace.h"
#include "workload/fragments.h"
#include "workload/queries.h"
#include "workload/synthetic_corpus.h"

namespace iqn {
namespace {

struct BenchConfig {
  size_t docs = 2000;
  size_t peers = 15;
  size_t queries = 32;
  size_t k = 10;
  size_t max_peers = 3;
  uint64_t seed = 42;
  uint64_t fault_seed = 7;
  std::vector<double> drop_rates;
  int retries = 3;
  double deadline_ms = 0.0;
  std::string out = "BENCH_chaos.json";
  std::string trace_out;    // Chrome trace of the last sweep point
  std::string metrics_out;  // standalone metrics snapshot JSON
};

std::vector<double> ParseRates(const std::string& spec) {
  std::vector<double> rates;
  std::string token;
  auto flush = [&] {
    if (!token.empty()) {
      rates.push_back(std::strtod(token.c_str(), nullptr));
      token.clear();
    }
  };
  for (char c : spec) {
    if (c == ',') {
      flush();
    } else {
      token.push_back(c);
    }
  }
  flush();
  if (rates.empty() || rates.front() != 0.0) {
    rates.insert(rates.begin(), 0.0);  // the fault-free baseline
  }
  return rates;
}

std::vector<Corpus> BuildCollections(const BenchConfig& config,
                                     std::vector<Query>* queries) {
  SyntheticCorpusOptions corpus_opts;
  corpus_opts.num_documents = config.docs;
  corpus_opts.vocabulary_size = config.docs / 8;
  corpus_opts.min_document_length = 30;
  corpus_opts.max_document_length = 100;
  corpus_opts.seed = config.seed;
  auto gen = SyntheticCorpusGenerator::Create(corpus_opts);
  if (!gen.ok()) {
    std::fprintf(stderr, "corpus: %s\n", gen.status().ToString().c_str());
    std::exit(1);
  }
  Corpus corpus = gen.value().Generate();
  auto frags = SplitIntoFragments(corpus, config.peers * 2);
  if (!frags.ok()) {
    std::fprintf(stderr, "fragments: %s\n", frags.status().ToString().c_str());
    std::exit(1);
  }
  auto collections = SlidingWindowCollections(frags.value(), /*window=*/3,
                                              /*offset=*/2, config.peers);
  if (!collections.ok()) {
    std::fprintf(stderr, "collections: %s\n",
                 collections.status().ToString().c_str());
    std::exit(1);
  }

  QueryWorkloadOptions q_opts;
  q_opts.num_queries = config.queries;
  q_opts.min_terms = 2;
  q_opts.max_terms = 3;
  q_opts.band_low = 0.005;
  q_opts.band_high = 0.10;
  q_opts.k = config.k;
  q_opts.seed = config.seed + 1;
  auto generated = GenerateQueries(gen.value().vocabulary(), q_opts);
  if (!generated.ok()) {
    std::fprintf(stderr, "queries: %s\n",
                 generated.status().ToString().c_str());
    std::exit(1);
  }
  *queries = std::move(generated).value();
  return std::move(collections).value();
}

struct SweepPoint {
  double drop_rate = 0.0;
  int max_attempts = 1;
  double mean_recall = 0.0;
  double recall_ratio = 0.0;  // vs the fault-free baseline
  uint64_t messages = 0;
  uint64_t bytes = 0;
  double traffic_overhead = 0.0;  // bytes vs the fault-free baseline
  uint64_t faults_injected = 0;
  uint64_t rpc_retries = 0;
  uint64_t peers_failed = 0;
  uint64_t peers_replaced = 0;
  uint64_t partial_queries = 0;
};

/// Runs the whole workload on a FRESH engine under one (rate, policy)
/// point. A fresh engine per point keeps every point independent and
/// reproducible in isolation (same numbers if swept alone).
/// `traces` non-null collects every query's span tree for the Chrome
/// trace export (and turns tracing on for the point).
SweepPoint RunPoint(const BenchConfig& config, double drop_rate,
                    int max_attempts,
                    std::vector<std::shared_ptr<const QueryTrace>>* traces) {
  std::vector<Query> queries;
  std::vector<Corpus> collections = BuildCollections(config, &queries);
  minerva::EngineOptions options;  // IQN routing by default
  options.core.retry.max_attempts = max_attempts;
  options.core.retry.jitter_seed = config.fault_seed;
  options.core.query_deadline_ms = config.deadline_ms;
  options.core.collect_traces = traces != nullptr;
  options.max_peers = config.max_peers;
  auto engine = minerva::Engine::Create(options, std::move(collections));
  if (!engine.ok()) {
    std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
    std::exit(1);
  }
  minerva::Engine& e = *engine.value();
  if (Status published = e.Publish(); !published.ok()) {
    std::fprintf(stderr, "publish: %s\n", published.ToString().c_str());
    std::exit(1);
  }
  // Meter only query traffic: publishing ran fault-free and is not part
  // of the sweep. The registry resets alongside, so the embedded metrics
  // snapshot describes the LAST sweep point's query phase (names and
  // bucket bounds registered by earlier points persist, zeroed).
  e.network().ResetStats();
  MetricsRegistry::Default().Reset();
  if (drop_rate > 0.0) {
    e.network().InstallFaultPlan(
        FaultPlan::MessageDrop(config.fault_seed, drop_rate));
  }

  SweepPoint point;
  point.drop_rate = drop_rate;
  point.max_attempts = max_attempts;
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryOutcome o;
    if (Status run = e.RunQuery(i % e.num_peers(), queries[i], &o);
        !run.ok()) {
      std::fprintf(stderr, "query %zu (drop=%.2f attempts=%d): %s\n", i,
                   drop_rate, max_attempts, run.ToString().c_str());
      std::exit(1);
    }
    if (traces != nullptr) traces->push_back(o.trace);
    point.mean_recall += o.recall;
    point.faults_injected += o.degradation.faults_survived;
    point.rpc_retries += o.degradation.rpc_retries;
    point.peers_failed += o.degradation.peers_failed;
    point.peers_replaced += o.degradation.peers_replaced;
    if (o.degradation.partial) ++point.partial_queries;
  }
  point.mean_recall /= static_cast<double>(queries.size());
  point.messages = e.network().stats().messages;
  point.bytes = e.network().stats().bytes;
  return point;
}

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("docs", 2000, "corpus size in documents");
  flags.DefineInt("peers", 15, "number of peers (sliding-window split)");
  flags.DefineInt("queries", 32, "number of queries per sweep point");
  flags.DefineInt("k", 10, "top-k per query (recall@k)");
  flags.DefineInt("max_peers", 3, "remote peers contacted per query");
  flags.DefineInt("seed", 42, "workload seed");
  flags.DefineInt("fault-seed", 7, "FaultPlan seed (fault schedule)");
  flags.DefineString("drop-rates", "0,0.02,0.05,0.1,0.15,0.2",
                     "comma-separated message drop rates; 0 is prepended "
                     "if absent (fault-free baseline)");
  flags.DefineInt("retries", 3,
                  "max RPC attempts in the with-retries runs (the sweep "
                  "always also runs a no-retry pass for comparison)");
  flags.DefineDouble("deadline-ms", 0.0,
                     "per-query simulated deadline budget; 0 = unlimited");
  flags.DefineString("out", "BENCH_chaos.json", "output JSON path");
  flags.DefineString("trace_out", "",
                     "write a Chrome trace_event JSON of the last sweep "
                     "point's queries to this path (enables tracing)");
  flags.DefineString("metrics_out", "",
                     "write the last sweep point's metrics snapshot JSON "
                     "to this path (always embedded in --out as well)");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 1;
  }
  BenchConfig config;
  config.docs = static_cast<size_t>(flags.GetInt("docs"));
  config.peers = static_cast<size_t>(flags.GetInt("peers"));
  config.queries = static_cast<size_t>(flags.GetInt("queries"));
  config.k = static_cast<size_t>(flags.GetInt("k"));
  config.max_peers = static_cast<size_t>(flags.GetInt("max_peers"));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  config.fault_seed = static_cast<uint64_t>(flags.GetInt("fault-seed"));
  config.drop_rates = ParseRates(flags.GetString("drop-rates"));
  config.retries = static_cast<int>(flags.GetInt("retries"));
  config.deadline_ms = flags.GetDouble("deadline-ms");
  config.out = flags.GetString("out");
  config.trace_out = flags.GetString("trace_out");
  config.metrics_out = flags.GetString("metrics_out");

  std::printf("recall_under_failure: %zu queries x %zu peers, k=%zu, "
              "fault seed %llu, retries=%d\n",
              config.queries, config.peers, config.k,
              static_cast<unsigned long long>(config.fault_seed),
              config.retries);

  std::vector<SweepPoint> points;
  std::vector<std::shared_ptr<const QueryTrace>> last_traces;
  double baseline_recall = 0.0;
  uint64_t baseline_bytes = 0;
  for (double rate : config.drop_rates) {
    for (int attempts : {1, config.retries}) {
      if (rate == 0.0 && attempts != 1) continue;  // baseline needs one pass
      if (rate > 0.0 && attempts == 1 && config.retries == 1 &&
          !points.empty() && points.back().drop_rate == rate) {
        continue;  // --retries=1 would duplicate the no-retry pass
      }
      std::vector<std::shared_ptr<const QueryTrace>> traces;
      SweepPoint point = RunPoint(
          config, rate, attempts,
          config.trace_out.empty() ? nullptr : &traces);
      last_traces = std::move(traces);
      if (rate == 0.0) {
        baseline_recall = point.mean_recall;
        baseline_bytes = point.bytes;
      }
      point.recall_ratio =
          baseline_recall > 0.0 ? point.mean_recall / baseline_recall : 0.0;
      point.traffic_overhead =
          baseline_bytes > 0
              ? static_cast<double>(point.bytes) /
                    static_cast<double>(baseline_bytes)
              : 0.0;
      std::printf("  drop=%.2f attempts=%d  recall@%zu=%.4f (%.1f%% of "
                  "fault-free)  bytes=%llu (%.2fx)  retries=%llu "
                  "faults=%llu replaced=%llu/%llu\n",
                  point.drop_rate, point.max_attempts, config.k,
                  point.mean_recall, 100.0 * point.recall_ratio,
                  static_cast<unsigned long long>(point.bytes),
                  point.traffic_overhead,
                  static_cast<unsigned long long>(point.rpc_retries),
                  static_cast<unsigned long long>(point.faults_injected),
                  static_cast<unsigned long long>(point.peers_replaced),
                  static_cast<unsigned long long>(point.peers_failed));
      points.push_back(point);
    }
  }

  LegacyReportWriter writer;
  FILE* out = writer.stream();
  if (out == nullptr) {
    std::fprintf(stderr, "cannot buffer bench JSON\n");
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"recall_under_failure\",\n");
  std::fprintf(out,
               "  \"workload\": {\"docs\": %zu, \"peers\": %zu, "
               "\"queries\": %zu, \"k\": %zu, \"max_peers\": %zu, "
               "\"seed\": %llu, \"fault_seed\": %llu, \"retries\": %d, "
               "\"deadline_ms\": %.1f},\n",
               config.docs, config.peers, config.queries, config.k,
               config.max_peers, static_cast<unsigned long long>(config.seed),
               static_cast<unsigned long long>(config.fault_seed),
               config.retries, config.deadline_ms);
  std::fprintf(out,
               "  \"metric_note\": \"each point runs the full workload on a "
               "fresh engine; recall_ratio and traffic_overhead are against "
               "the fault-free baseline (drop_rate 0); max_attempts 1 = no "
               "retries\",\n");
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(
        out,
        "    {\"drop_rate\": %.3f, \"max_attempts\": %d, "
        "\"mean_recall\": %.6f, \"recall_ratio\": %.6f, "
        "\"messages\": %llu, \"bytes\": %llu, \"traffic_overhead\": %.4f, "
        "\"faults_injected\": %llu, \"rpc_retries\": %llu, "
        "\"peers_failed\": %llu, \"peers_replaced\": %llu, "
        "\"partial_queries\": %llu}%s\n",
        p.drop_rate, p.max_attempts, p.mean_recall, p.recall_ratio,
        static_cast<unsigned long long>(p.messages),
        static_cast<unsigned long long>(p.bytes), p.traffic_overhead,
        static_cast<unsigned long long>(p.faults_injected),
        static_cast<unsigned long long>(p.rpc_retries),
        static_cast<unsigned long long>(p.peers_failed),
        static_cast<unsigned long long>(p.peers_replaced),
        static_cast<unsigned long long>(p.partial_queries),
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  // Per-fault-class histograms (fault.per_query.*) and the query.*
  // instruments of the LAST sweep point — the highest-drop retry pass.
  MetricsSnapshot snapshot = MetricsRegistry::Default().Snapshot();
  std::string metrics_json = snapshot.ToJson();
  std::fprintf(out, "  \"metrics\": %s", metrics_json.c_str());
  std::fprintf(out, "}\n");
  if (Status w = writer.Finish(config.out); !w.ok()) {
    std::fprintf(stderr, "%s\n", w.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", config.out.c_str());
  if (!config.metrics_out.empty()) {
    if (Status w = WriteTextFile(config.metrics_out, metrics_json); !w.ok()) {
      std::fprintf(stderr, "%s\n", w.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", config.metrics_out.c_str());
  }
  if (!config.trace_out.empty()) {
    std::vector<const QueryTrace*> trace_views;
    for (const auto& t : last_traces) {
      if (t != nullptr) trace_views.push_back(t.get());
    }
    if (Status w = WriteChromeTraceFile(config.trace_out, trace_views);
        !w.ok()) {
      std::fprintf(stderr, "%s\n", w.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu query traces)\n", config.trace_out.c_str(),
                trace_views.size());
  }

  // Acceptance gate: with retries, recall at every drop rate <= 10% must
  // stay within 5% of the fault-free baseline.
  for (const SweepPoint& p : points) {
    if (p.max_attempts > 1 && p.drop_rate <= 0.10 + 1e-12 &&
        p.recall_ratio < 0.95) {
      std::fprintf(stderr,
                   "ACCEPTANCE VIOLATION: drop=%.2f with retries recovers "
                   "only %.1f%% of fault-free recall (bound: 95%%)\n",
                   p.drop_rate, 100.0 * p.recall_ratio);
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace iqn

int main(int argc, char** argv) { return iqn::Main(argc, argv); }

// FIG3-L / FIG3-R — paper Figure 3: "Recall as a function of the number
// of peers involved per query".
//
// Left chart:  (f choose s) partitioning, f = 6, s = 3 -> 20 peers.
// Right chart: sliding-window partitioning, 100 fragments, window 10,
//              offset 2 -> 50 peers.
//
// Series: CORI (quality only, the paper's baseline), IQN with MIPs-32,
// BF-1024, MIPs-64, BF-2048, plus the authors' prior SIGIR'05 one-shot
// overlap method ("SimpleOverlap") for reference. Recall is relative to
// a centralized engine over the union of all collections and is
// micro-averaged over the query workload (initiators rotate).
//
// Claims to reproduce: every IQN variant beats CORI by a large margin at
// small peer budgets; MIPs-based IQN beats BF-based IQN at 1024 bits;
// doubling bits helps BF a lot and MIPs a little.
//
// Usage: fig3_recall [--mode=choose|sliding|all] [--docs=8000] [--vocab=N]
//                    [--queries=10] [--k=50] [--max_peers=N]

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "minerva/api.h"
#include "util/bench_report.h"
#include "util/flags.h"
#include "util/json_value.h"
#include "workload/fragments.h"
#include "workload/queries.h"
#include "workload/synthetic_corpus.h"

namespace iqn {
namespace {

struct Series {
  std::string label;
  SynopsisConfig synopsis;        // system-wide synopsis agreement
  minerva::RoutingSpec routing;
};

std::vector<Series> MakeSeries() {
  std::vector<Series> series;
  auto mips = [](size_t bits) {
    SynopsisConfig c;
    c.type = SynopsisType::kMinWise;
    c.bits = bits;
    return c;
  };
  auto bloom = [](size_t bits) {
    SynopsisConfig c;
    c.type = SynopsisType::kBloomFilter;
    c.bits = bits;
    return c;
  };
  minerva::RoutingSpec cori;
  cori.kind = minerva::RouterKind::kCori;
  minerva::RoutingSpec overlap;
  overlap.kind = minerva::RouterKind::kSimpleOverlap;
  minerva::RoutingSpec iqn;  // defaults to kIqn
  series.push_back({"CORI", mips(2048), cori});
  series.push_back({"SimpleOvl", mips(2048), overlap});
  series.push_back({"MIPs 32", mips(1024), iqn});
  series.push_back({"BF 1024", bloom(1024), iqn});
  series.push_back({"MIPs 64", mips(2048), iqn});
  series.push_back({"BF 2048", bloom(2048), iqn});
  return series;
}

struct Workload {
  std::vector<Corpus> collections;
  std::vector<Query> queries;
};

Workload BuildWorkload(bool sliding, size_t docs, size_t vocab,
                       size_t num_queries, size_t k, uint64_t seed) {
  SyntheticCorpusOptions corpus_opts;
  corpus_opts.num_documents = docs;
  corpus_opts.vocabulary_size = vocab;
  corpus_opts.min_document_length = 30;
  corpus_opts.max_document_length = 100;
  corpus_opts.seed = seed;
  auto gen = SyntheticCorpusGenerator::Create(corpus_opts);
  if (!gen.ok()) {
    std::fprintf(stderr, "corpus: %s\n", gen.status().ToString().c_str());
    std::exit(1);
  }
  Corpus corpus = gen.value().Generate();

  Workload workload;
  if (sliding) {
    auto frags = SplitIntoFragments(corpus, 100);
    auto collections =
        SlidingWindowCollections(frags.value(), /*window=*/10, /*offset=*/2,
                                 /*num_peers=*/50);
    workload.collections = std::move(collections).value();
  } else {
    auto frags = SplitIntoFragments(corpus, 6);
    auto collections = ChooseCombinationCollections(frags.value(), 3);
    workload.collections = std::move(collections).value();
  }

  QueryWorkloadOptions q_opts;
  q_opts.num_queries = num_queries;
  q_opts.min_terms = 2;
  q_opts.max_terms = 3;
  q_opts.band_low = 0.005;
  q_opts.band_high = 0.10;
  q_opts.k = k;
  q_opts.seed = seed + 1;
  auto queries = GenerateQueries(gen.value().vocabulary(), q_opts);
  if (!queries.ok()) {
    std::fprintf(stderr, "queries: %s\n", queries.status().ToString().c_str());
    std::exit(1);
  }
  workload.queries = std::move(queries).value();
  return workload;
}

/// Micro-averaged recall (and duplicate fraction) at one peer budget.
struct Point {
  double recall = 0.0;
  double duplicates = 0.0;
};

Point Measure(minerva::Engine* engine, const std::vector<Query>& queries,
              const minerva::RoutingSpec& routing, size_t max_peers) {
  Point point;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    size_t initiator = qi % engine->num_peers();
    QueryOutcome outcome;
    if (Status run = engine->RunQueryWith(routing, initiator, queries[qi],
                                          max_peers, &outcome);
        !run.ok()) {
      std::fprintf(stderr, "query failed: %s\n", run.ToString().c_str());
      continue;
    }
    point.recall += outcome.recall_remote_only;
    point.duplicates += outcome.duplicate_fraction;
  }
  point.recall /= static_cast<double>(queries.size());
  point.duplicates /= static_cast<double>(queries.size());
  return point;
}

JsonValue RunChart(const char* title, bool sliding, size_t docs, size_t vocab,
                   size_t num_queries, size_t k, size_t max_peers,
                   uint64_t seed) {
  std::printf("\n=== Figure 3 (%s): relative recall vs #queried peers ===\n",
              title);
  std::printf(
      "(docs=%zu, %zu peers, %zu queries, top-%zu, recall vs centralized "
      "reference)\n",
      docs, sliding ? size_t{50} : size_t{20}, num_queries, k);

  Workload workload =
      BuildWorkload(sliding, docs, vocab, num_queries, k, seed);
  std::vector<Series> series = MakeSeries();

  // Header.
  std::printf("%-10s", "peers");
  for (const auto& s : series) std::printf("%11s", s.label.c_str());
  std::printf("\n");

  // One engine per distinct synopsis configuration (posts differ);
  // series sharing a configuration share the engine.
  std::map<std::string, std::unique_ptr<minerva::Engine>> engines;
  auto engine_for = [&](const SynopsisConfig& config) -> minerva::Engine* {
    std::string key = std::string(SynopsisTypeName(config.type)) + "/" +
                      std::to_string(config.bits);
    auto it = engines.find(key);
    if (it != engines.end()) return it->second.get();
    minerva::EngineOptions options;
    options.core.synopsis = config;
    auto engine =
        minerva::Engine::Create(options, BuildWorkload(sliding, docs, vocab,
                                                       num_queries, k, seed)
                                             .collections);
    if (!engine.ok()) {
      std::fprintf(stderr, "engine: %s\n", engine.status().ToString().c_str());
      std::exit(1);
    }
    Status published = engine.value()->Publish();
    if (!published.ok()) {
      std::fprintf(stderr, "publish: %s\n", published.ToString().c_str());
      std::exit(1);
    }
    return engines.emplace(key, std::move(engine).value())
        .first->second.get();
  };

  std::vector<std::vector<Point>> table(series.size());
  for (size_t si = 0; si < series.size(); ++si) {
    minerva::Engine* engine = engine_for(series[si].synopsis);
    for (size_t peers = 1; peers <= max_peers; ++peers) {
      table[si].push_back(
          Measure(engine, workload.queries, series[si].routing, peers));
    }
  }

  for (size_t peers = 1; peers <= max_peers; ++peers) {
    std::printf("%-10zu", peers);
    for (size_t si = 0; si < series.size(); ++si) {
      std::printf("%10.1f%%", table[si][peers - 1].recall * 100.0);
    }
    std::printf("\n");
  }

  std::printf("\nduplicate fraction among contacted peers' results "
              "(redundant retrieval waste):\n");
  std::printf("%-10s", "peers");
  for (const auto& s : series) std::printf("%11s", s.label.c_str());
  std::printf("\n");
  for (size_t peers : {size_t{3}, std::min(max_peers, size_t{6})}) {
    std::printf("%-10zu", peers);
    for (size_t si = 0; si < series.size(); ++si) {
      std::printf("%10.1f%%", table[si][peers - 1].duplicates * 100.0);
    }
    std::printf("\n");
  }

  // The same table, structured for the bench report.
  std::vector<JsonValue> series_out;
  for (size_t si = 0; si < series.size(); ++si) {
    std::vector<JsonValue> recalls;
    std::vector<JsonValue> duplicates;
    for (size_t peers = 1; peers <= max_peers; ++peers) {
      recalls.push_back(JsonValue::Number(table[si][peers - 1].recall));
      duplicates.push_back(
          JsonValue::Number(table[si][peers - 1].duplicates));
    }
    series_out.push_back(JsonValue::Object(
        {{"series", JsonValue::String(series[si].label)},
         {"recall", JsonValue::Array(std::move(recalls))},
         {"duplicates", JsonValue::Array(std::move(duplicates))}}));
  }
  return JsonValue::Object(
      {{"chart", JsonValue::String(title)},
       {"max_peers", JsonValue::Number(static_cast<double>(max_peers))},
       {"series", JsonValue::Array(std::move(series_out))}});
}

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineString("mode", "all", "choose | sliding | all");
  flags.DefineInt("docs", 8000, "corpus size in documents");
  flags.DefineInt("vocab", 0,
                  "vocabulary size (0 = docs/8; smaller vocabularies give "
                  "longer index lists, stressing fixed-size synopses)");
  flags.DefineInt("queries", 10, "number of benchmark queries");
  flags.DefineInt("k", 50, "top-k of the reference engine");
  flags.DefineInt("max_peers", 0,
                  "peer budget sweep upper bound (0 = paper defaults: "
                  "7 for choose, 10 for sliding)");
  flags.DefineInt("seed", 42, "workload seed");
  flags.DefineString("out", "BENCH_fig3_recall.json",
                     "bench report JSON path");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 1;
  }
  std::string mode = flags.GetString("mode");
  size_t docs = static_cast<size_t>(flags.GetInt("docs"));
  size_t vocab = static_cast<size_t>(flags.GetInt("vocab"));
  if (vocab == 0) vocab = docs / 8;
  size_t queries = static_cast<size_t>(flags.GetInt("queries"));
  size_t k = static_cast<size_t>(flags.GetInt("k"));
  size_t max_peers = static_cast<size_t>(flags.GetInt("max_peers"));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));

  std::vector<JsonValue> charts;
  if (mode == "choose" || mode == "all") {
    charts.push_back(RunChart("left: (6 choose 3), 20 peers",
                              /*sliding=*/false, docs, vocab, queries, k,
                              max_peers == 0 ? 7 : max_peers, seed));
  }
  if (mode == "sliding" || mode == "all") {
    charts.push_back(RunChart("right: sliding window, 50 peers",
                              /*sliding=*/true, docs, vocab, queries, k,
                              max_peers == 0 ? 10 : max_peers, seed));
  }

  BenchReport report(
      "fig3_recall",
      JsonValue::Object(
          {{"mode", JsonValue::String(mode)},
           {"docs", JsonValue::Number(static_cast<double>(docs))},
           {"vocab", JsonValue::Number(static_cast<double>(vocab))},
           {"queries", JsonValue::Number(static_cast<double>(queries))},
           {"k", JsonValue::Number(static_cast<double>(k))},
           {"seed", JsonValue::Number(static_cast<double>(seed))}}));
  report.AddSection("results", JsonValue::Array(std::move(charts)));
  const std::string& out = flags.GetString("out");
  if (Status w = report.WriteFile(out); !w.ok()) {
    std::fprintf(stderr, "%s\n", w.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace iqn

int main(int argc, char** argv) { return iqn::Main(argc, argv); }

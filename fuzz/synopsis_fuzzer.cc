// Fuzz target for the synopsis wire format (-DIQN_FUZZ=ON).
//
// One input exercises both untrusted-byte entry points the DHT exposes:
// DeserializeSynopsisFromBytes and DeserializeHistogram. Accepted inputs
// must additionally survive a serialize/deserialize round trip; anything
// else is a bug, reported by trapping so the fuzzer minimizes it.
//
// Under Clang this links against libFuzzer via -fsanitize=fuzzer. The
// container toolchain here is gcc-only, so fuzz/CMakeLists.txt falls back
// to a standalone driver (IQN_FUZZ_STANDALONE) that replays corpus files
// through the identical TestOneInput — CI and developers without Clang
// still get crash-replay and regression coverage under ASan/UBSan.
//
// Usage (standalone):
//   synopsis_fuzzer --make-corpus <dir>   write seed corpus files
//   synopsis_fuzzer <file>...             replay inputs (crashes on bug)

#include <cstddef>
#include <cstdint>

#include "synopses/serialization.h"
#include "util/bytes.h"

namespace {

void TestOneInput(const uint8_t* data, size_t size) {
  iqn::Bytes bytes(data, data + size);

  auto synopsis = iqn::DeserializeSynopsisFromBytes(bytes);
  if (synopsis.ok()) {
    iqn::Bytes again = iqn::SerializeSynopsisToBytes(*synopsis.value());
    if (!iqn::DeserializeSynopsisFromBytes(again).ok()) __builtin_trap();
  }

  iqn::ByteReader reader(bytes);
  auto histogram = iqn::DeserializeHistogram(&reader);
  (void)histogram;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  TestOneInput(data, size);
  return 0;
}

#ifdef IQN_FUZZ_STANDALONE

#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "synopses/bloom_filter.h"
#include "synopses/hash_sketch.h"
#include "synopses/histogram_synopsis.h"
#include "synopses/loglog.h"
#include "synopses/min_wise.h"
#include "util/random.h"

namespace {

int WriteCorpus(const std::string& dir) {
  using iqn::Bytes;
  std::vector<Bytes> seeds;

  auto bloom = iqn::BloomFilter::Create(512, 3, 42);
  if (!bloom.ok()) return 1;
  for (iqn::DocId id = 0; id < 64; ++id) bloom.value().Add(id);
  seeds.push_back(iqn::SerializeSynopsisToBytes(bloom.value()));
  seeds.push_back(iqn::SerializeBloomFilterCompressed(bloom.value()));

  auto sketch = iqn::HashSketch::Create(16, 32, 9);
  if (!sketch.ok()) return 1;
  for (iqn::DocId id = 0; id < 300; ++id) sketch.value().Add(id);
  seeds.push_back(iqn::SerializeSynopsisToBytes(sketch.value()));

  iqn::UniversalHashFamily family(4242);
  auto mips = iqn::MinWiseSynopsis::Create(48, family);
  if (!mips.ok()) return 1;
  for (iqn::DocId id = 0; id < 200; ++id) mips.value().Add(id);
  seeds.push_back(iqn::SerializeSynopsisToBytes(mips.value()));

  auto loglog = iqn::LogLogCounter::Create(64, 3, true);
  if (!loglog.ok()) return 1;
  for (iqn::DocId id = 0; id < 5000; ++id) loglog.value().Add(id);
  seeds.push_back(iqn::SerializeSynopsisToBytes(loglog.value()));

  auto factory = [] {
    auto bf = iqn::BloomFilter::Create(256, 2, 11);
    return std::unique_ptr<iqn::SetSynopsis>(
        new iqn::BloomFilter(std::move(bf.value())));
  };
  auto hist = iqn::ScoreHistogramSynopsis::Create(8, factory);
  if (!hist.ok()) return 1;
  iqn::Rng rng(31337);
  for (iqn::DocId id = 0; id < 120; ++id) {
    hist.value().Add(id, rng.NextDouble());
  }
  iqn::ByteWriter writer;
  iqn::SerializeHistogram(hist.value(), &writer);
  seeds.push_back(writer.Take());

  for (size_t i = 0; i < seeds.size(); ++i) {
    std::string path = dir + "/seed-" + std::to_string(i) + ".bin";
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    out.write(reinterpret_cast<const char*>(seeds[i].data()),
              static_cast<std::streamsize>(seeds[i].size()));
  }
  std::fprintf(stderr, "wrote %zu seed files to %s\n", seeds.size(),
               dir.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::string(argv[1]) == "--make-corpus") {
    return WriteCorpus(argv[2]);
  }
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s --make-corpus <dir> | %s <input-file>...\n",
                 argv[0], argv[0]);
    return 1;
  }
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", argv[i]);
      return 1;
    }
    std::vector<uint8_t> data((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
    TestOneInput(data.data(), data.size());
    std::fprintf(stderr, "ok: %s (%zu bytes)\n", argv[i], data.size());
  }
  return 0;
}

#endif  // IQN_FUZZ_STANDALONE

// Fuzz target for the TCP frame codec (-DIQN_FUZZ=ON).
//
// One input exercises both decoder layers on untrusted bytes:
//
//   * DecodeFrameBody on the raw input — must return a Frame or a
//     Corruption status with a nonempty diagnosis, never crash or
//     over-read (ASan-visible);
//   * FrameAssembler reassembly — the input is replayed as a byte
//     stream in irregular chunks under a small max_frame_bytes, so
//     hostile length prefixes, truncated bodies, and frames straddling
//     reads all occur;
//   * the round-trip invariant on accepted frames — re-encoding a
//     decoded frame and decoding it again must reproduce the same
//     fields (trapping otherwise, so the fuzzer minimizes the lossy
//     input).
//
// Under Clang this links libFuzzer via -fsanitize=fuzzer; the gcc-only
// container builds it as a standalone corpus-replay driver
// (IQN_FUZZ_STANDALONE) with --make-corpus seeding, matching the other
// fuzzers in this directory.
//
// Usage (standalone):
//   frame_decode_fuzz --make-corpus <dir>   write seed corpus files
//   frame_decode_fuzz <file>...             replay inputs (crashes on bug)

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "net/frame.h"
#include "util/bytes.h"

namespace {

using iqn::Bytes;
using iqn::EncodeFrame;
using iqn::Frame;
using iqn::FrameAssembler;
using iqn::kFrameLengthPrefixBytes;

void CheckRoundTrip(const Frame& frame) {
  Bytes wire = EncodeFrame(frame);
  auto again = iqn::DecodeFrameBody(wire.data() + kFrameLengthPrefixBytes,
                                    wire.size() - kFrameLengthPrefixBytes);
  if (!again.ok()) __builtin_trap();
  const Frame& b = again.value();
  if (b.version != frame.version || b.type != frame.type ||
      b.request_id != frame.request_id || b.src != frame.src ||
      b.dst != frame.dst || b.attempt != frame.attempt ||
      b.verb != frame.verb || b.status_code != frame.status_code ||
      b.status_message != frame.status_message ||
      b.payload != frame.payload) {
    __builtin_trap();
  }
}

void TestOneInput(const uint8_t* data, size_t size) {
  // Layer 1: the raw body decoder on the input as-is.
  auto decoded = iqn::DecodeFrameBody(data, size);
  if (decoded.ok()) {
    CheckRoundTrip(decoded.value());
  } else if (decoded.status().message().empty()) {
    __builtin_trap();  // every rejection must carry a diagnosis
  }

  // Layer 2: stream reassembly in irregular chunks. The first input
  // byte picks the chunking pattern; a small frame cap makes hostile
  // length prefixes reachable with tiny inputs.
  FrameAssembler assembler(/*max_frame_bytes=*/512);
  size_t chunk = size ? (data[0] % 7) + 1 : 1;
  size_t offset = 0;
  bool poisoned = false;
  while (offset < size && !poisoned) {
    size_t n = chunk < size - offset ? chunk : size - offset;
    poisoned = !assembler.Feed(data + offset, n).ok();
    offset += n;
    Frame frame;
    while (!poisoned) {
      auto produced = assembler.Next(&frame);
      if (!produced.ok()) {
        poisoned = true;  // corrupt body poisons the stream, by contract
        break;
      }
      if (!produced.value()) break;
      CheckRoundTrip(frame);
    }
  }
  if (poisoned) {
    // A poisoned stream must stay poisoned: framing cannot resync.
    const uint8_t zero = 0;
    if (assembler.Feed(&zero, 1).ok()) __builtin_trap();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  TestOneInput(data, size);
  return 0;
}

#ifdef IQN_FUZZ_STANDALONE

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

namespace {

/// Seed corpus: well-formed frames of each type plus near-misses for
/// each rejection layer (bad version, hostile length, truncation).
std::vector<Bytes> MakeSeeds() {
  std::vector<Bytes> seeds;

  Frame request;
  request.type = iqn::FrameType::kRequest;
  request.request_id = 7;
  request.src = 1;
  request.dst = 2;
  request.verb = "peer.query";
  request.payload = Bytes{1, 2, 3};
  seeds.push_back(EncodeFrame(request));

  Frame control = request;
  control.type = iqn::FrameType::kControl;
  control.verb = "ctl.ping";
  control.payload.clear();
  seeds.push_back(EncodeFrame(control));

  seeds.push_back(EncodeFrame(iqn::MakeResponseFrame(
      7, iqn::Status::Unavailable("peer down"), {})));
  seeds.push_back(EncodeFrame(
      iqn::MakeResponseFrame(8, iqn::Status::OK(), Bytes{9, 9})));

  // Bad version byte.
  Bytes bad_version = EncodeFrame(request);
  bad_version[kFrameLengthPrefixBytes] = 0x7f;
  seeds.push_back(bad_version);
  // Truncated mid-verb.
  Bytes truncated = EncodeFrame(request);
  truncated.resize(truncated.size() / 2);
  seeds.push_back(truncated);
  // Hostile 4 GiB length claim.
  seeds.push_back(Bytes{0xff, 0xff, 0xff, 0xff, 0x00});

  return seeds;
}

int MakeCorpus(const std::string& dir) {
  int written = 0;
  for (const Bytes& seed : MakeSeeds()) {
    std::string path = dir + "/seed_" + std::to_string(written) + ".bin";
    std::ofstream out(path, std::ios::binary);
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    out.write(reinterpret_cast<const char*>(seed.data()),
              static_cast<std::streamsize>(seed.size()));
    ++written;
  }
  std::printf("wrote %d corpus files to %s\n", written, dir.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::string(argv[1]) == "--make-corpus") {
    return MakeCorpus(argv[2]);
  }
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s --make-corpus DIR | %s FILE...\n"
                 "(standalone replay driver; build with clang for "
                 "libFuzzer)\n",
                 argv[0], argv[0]);
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in.good()) {
      std::fprintf(stderr, "cannot read %s\n", argv[i]);
      return 1;
    }
    std::vector<uint8_t> bytes{std::istreambuf_iterator<char>(in),
                               std::istreambuf_iterator<char>()};
    TestOneInput(bytes.data(), bytes.size());
    std::printf("%s: ok (%zu bytes)\n", argv[i], bytes.size());
  }
  return 0;
}

#endif  // IQN_FUZZ_STANDALONE

// Fuzz target for the scenario-spec ingestion path (-DIQN_FUZZ=ON).
//
// One input runs the whole untrusted-text pipeline: ParseJson's strict
// RFC 8259 subset, the spec extraction with its unknown-key rejection,
// and cross-section validation. Accepted inputs must additionally be a
// fixed point of the canonical emission (emit -> parse -> emit); any
// accepted-but-lossy spec is a bug, reported by trapping so the fuzzer
// minimizes it. Rejected inputs must carry a nonempty diagnosis.
//
// Under Clang this links against libFuzzer via -fsanitize=fuzzer. The
// container toolchain here is gcc-only, so fuzz/CMakeLists.txt falls
// back to a standalone driver (IQN_FUZZ_STANDALONE) that replays corpus
// files through the identical TestOneInput. The seeded-mutation ctest
// (tests/minerva/scenario_mutation_test.cc) enforces the same invariant
// on every plain test pass.
//
// Usage (standalone):
//   scenario_spec_fuzz --make-corpus <dir>   write seed corpus files
//   scenario_spec_fuzz <file>...             replay inputs (crashes on bug)

#include <cstddef>
#include <cstdint>
#include <string>

#include "minerva/scenario.h"

namespace {

void TestOneInput(const uint8_t* data, size_t size) {
  std::string text(reinterpret_cast<const char*>(data), size);
  auto spec = minerva::ParseScenarioSpec(text);
  if (!spec.ok()) {
    if (spec.status().message().empty()) __builtin_trap();
    return;
  }
  std::string emitted = minerva::EmitScenarioSpec(spec.value());
  auto again = minerva::ParseScenarioSpec(emitted);
  if (!again.ok()) __builtin_trap();
  if (minerva::EmitScenarioSpec(again.value()) != emitted) __builtin_trap();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  TestOneInput(data, size);
  return 0;
}

#ifdef IQN_FUZZ_STANDALONE

#include <cstdio>
#include <fstream>
#include <iterator>
#include <vector>

namespace {

/// Seed corpus: valid specs of increasing coverage plus near-misses
/// that exercise each rejection layer.
const char* kSeeds[] = {
    // Minimal valid spec (everything defaulted).
    R"({"name": "seed"})",
    // Every section present with non-default values.
    R"({"name": "full", "seed": 7,
        "corpus": {"documents": 640, "vocabulary": 100},
        "topology": {"peers": 4, "partition": "choose", "subset": 2,
                     "fragments": 5},
        "engine": {"router": "cori", "synopsis": "bloom", "merge": "cori",
                   "threads": 4, "cache": true},
        "faults": {"seed": 3, "drop_rate": 0.25},
        "churn": {"every": 8, "documents": 16},
        "queries": {"pool": 6, "executions": 12, "zipf_s": 1.0,
                    "batch_size": 4, "initiator": 3},
        "adversary": {"fraction": 0.5, "behavior": "poison", "factor": 2},
        "reputation": {"enabled": true, "prior": 4, "floor": 0.1,
                       "sharpness": 3}})",
    // Near-misses, one per rejection layer.
    R"({"name": "x", "bogus": 1})",
    R"({"name": "x", "corpus": {"documents": 0}})",
    R"({"name": "x", "queries": {"band_low": 0.5, "band_high": 0.2}})",
    R"({"name": "x", "engine": {"router": "astar"}})",
    "{\"name\": \"x\"",
    "[1, 2, 3]",
};

int MakeCorpus(const std::string& dir) {
  int written = 0;
  for (const char* seed : kSeeds) {
    std::string path = dir + "/seed_" + std::to_string(written) + ".json";
    std::ofstream out(path, std::ios::binary);
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    out << seed;
    ++written;
  }
  std::printf("wrote %d corpus files to %s\n", written, dir.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::string(argv[1]) == "--make-corpus") {
    return MakeCorpus(argv[2]);
  }
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s --make-corpus DIR | %s FILE...\n"
                 "(standalone replay driver; build with clang for "
                 "libFuzzer)\n",
                 argv[0], argv[0]);
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in.good()) {
      std::fprintf(stderr, "cannot read %s\n", argv[i]);
      return 1;
    }
    std::vector<uint8_t> bytes{std::istreambuf_iterator<char>(in),
                               std::istreambuf_iterator<char>()};
    TestOneInput(bytes.data(), bytes.size());
    std::printf("%s: ok (%zu bytes)\n", argv[i], bytes.size());
  }
  return 0;
}

#endif  // IQN_FUZZ_STANDALONE

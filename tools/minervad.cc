// minervad: one rank of a multi-process MINERVA cluster.
//
// Usage: minervad SPEC.json --rank=N [--io-timeout-ms=MS]
//          [--connect-wait-ms=MS]
//
// The spec must declare a tcp transport with one endpoint per rank
// (see DESIGN.md §16). Every rank builds the IDENTICAL engine from the
// same spec — same workload seeds, same peers, same addresses — and the
// transport routes each peer's traffic to the rank that owns it
// (address % nranks). The daemon then serves the control protocol on
// its listen socket until a client sends ctl.shutdown:
//
//   ctl.ping         -> liveness probe (empty payload both ways)
//   ctl.status       -> rank, nranks, num_peers, published flag, and
//                       the engine's adversary indices
//   ctl.publish      -> publish every locally-owned peer's posts
//                       (the client drives this rank by rank; remote
//                       directory posts travel over the wire)
//   ctl.reset_meters -> zero the transport stats and metrics registry
//                       (the client calls it on every rank once ALL
//                       ranks published, mirroring RunScenario's
//                       meter-only-the-query-phase discipline)
//   ctl.run_query    -> run stream position N (varint payload) on its
//                       initiator peer, which this rank must own;
//                       responds with the encoded ScenarioOutcomeWire
//   ctl.stats        -> this rank's transport stats + cache counters
//   ctl.shutdown     -> acknowledge and exit
//
// The client (tools/minerva_client.cc) issues control calls serially,
// so a daemon never blocks on a peer that is itself mid-control-call —
// the no-deadlock argument the inline event-loop dispatch relies on.
//
// Exit status 0 after a clean ctl.shutdown, 1 on any startup error.

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "minerva/scenario.h"
#include "net/tcp_transport.h"
#include "util/bytes.h"
#include "util/flags.h"
#include "util/metrics.h"
#include "util/mutex.h"

namespace iqn {
namespace {

Result<std::string> ReadTextFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  std::string contents;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    return Status::Internal("error reading " + path);
  }
  return contents;
}

struct DaemonState {
  Mutex mu;
  CondVar cv;
  bool shutdown IQN_GUARDED_BY(mu) = false;
  bool published IQN_GUARDED_BY(mu) = false;
};

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("rank", -1, "this daemon's rank (required)");
  flags.DefineInt("io-timeout-ms", 30000,
                  "socket send/receive timeout per exchange");
  flags.DefineInt("connect-wait-ms", 30000,
                  "how long outbound connects retry while peer daemons "
                  "start up");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 1;
  }
  if (flags.positional().size() != 1 || flags.GetInt("rank") < 0) {
    std::fprintf(stderr,
                 "usage: %s SPEC.json --rank=N [--io-timeout-ms=MS] "
                 "[--connect-wait-ms=MS]\n",
                 argv[0]);
    return 1;
  }
  const std::string& spec_path = flags.positional()[0];
  const uint32_t rank = static_cast<uint32_t>(flags.GetInt("rank"));

  Result<std::string> text = ReadTextFile(spec_path);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 1;
  }
  Result<minerva::ScenarioSpec> spec_or =
      minerva::ParseScenarioSpec(text.value());
  if (!spec_or.ok()) {
    std::fprintf(stderr, "%s: %s\n", spec_path.c_str(),
                 spec_or.status().ToString().c_str());
    return 1;
  }
  const minerva::ScenarioSpec& spec = spec_or.value();
  if (spec.transport.kind != TransportKind::kTcp ||
      spec.transport.endpoints.empty()) {
    std::fprintf(stderr,
                 "%s: minervad needs a tcp transport with endpoints "
                 "(transport.kind \"tcp\")\n",
                 spec_path.c_str());
    return 1;
  }
  if (rank >= spec.transport.endpoints.size()) {
    std::fprintf(stderr, "--rank=%u out of range (spec declares %zu ranks)\n",
                 rank, spec.transport.endpoints.size());
    return 1;
  }

  Result<minerva::ScenarioWorkload> workload =
      minerva::BuildScenarioWorkload(spec);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }
  const std::vector<Query> pool = std::move(workload.value().pool);
  const std::vector<size_t> schedule = std::move(workload.value().schedule);

  minerva::EngineOptions options = minerva::EngineOptionsFromSpec(spec, rank);
  options.core.transport.io_timeout_ms =
      static_cast<int>(flags.GetInt("io-timeout-ms"));
  options.core.transport.connect_wait_ms =
      static_cast<int>(flags.GetInt("connect-wait-ms"));
  Result<std::unique_ptr<minerva::Engine>> engine_or =
      minerva::Engine::Create(std::move(options),
                              std::move(workload.value().collections));
  if (!engine_or.ok()) {
    std::fprintf(stderr, "%s\n", engine_or.status().ToString().c_str());
    return 1;
  }
  minerva::Engine& engine = *engine_or.value();
  if (std::string(engine.network().kind_name()) != "tcp") {
    std::fprintf(stderr, "internal: engine transport is not tcp\n");
    return 1;
  }
  auto* tcp = static_cast<TcpTransport*>(&engine.network());

  DaemonState state;
  const size_t num_peers = engine.num_peers();
  tcp->SetControlHandler([&](const std::string& verb,
                             const Bytes& payload) -> Result<Bytes> {
    if (verb == "ctl.ping") {
      return Bytes{};
    }
    if (verb == "ctl.status") {
      ByteWriter writer;
      writer.PutVarint(rank);
      writer.PutVarint(tcp->num_ranks());
      writer.PutVarint(num_peers);
      bool published;
      {
        MutexLock lock(&state.mu);
        published = state.published;
      }
      writer.PutU8(published ? 1 : 0);
      const std::vector<size_t>& adversaries =
          engine.core().adversary_indices();
      writer.PutVarint(adversaries.size());
      for (size_t idx : adversaries) writer.PutVarint(idx);
      return std::move(writer).Take();
    }
    if (verb == "ctl.publish") {
      IQN_RETURN_IF_ERROR(engine.Publish());
      MutexLock lock(&state.mu);
      state.published = true;
      return Bytes{};
    }
    if (verb == "ctl.reset_meters") {
      engine.network().ResetStats();
      MetricsRegistry::Default().Reset();
      return Bytes{};
    }
    if (verb == "ctl.run_query") {
      {
        MutexLock lock(&state.mu);
        if (!state.published) {
          return Status::InvalidArgument(
              "ctl.run_query before ctl.publish completed");
        }
      }
      ByteReader reader(payload);
      uint64_t pos = 0;
      IQN_RETURN_IF_ERROR(reader.GetVarint(&pos));
      if (!reader.AtEnd() || pos >= schedule.size()) {
        return Status::InvalidArgument("bad ctl.run_query position");
      }
      size_t initiator = spec.queries.initiator >= 0
                             ? static_cast<size_t>(spec.queries.initiator)
                             : pos % num_peers;
      if (!tcp->IsLocal(engine.peer(initiator).address())) {
        return Status::InvalidArgument(
            "stream position " + std::to_string(pos) + " (initiator " +
            std::to_string(initiator) + ") is not owned by rank " +
            std::to_string(rank));
      }
      QueryOutcome outcome;
      IQN_RETURN_IF_ERROR(
          engine.RunQuery(initiator, pool[schedule[pos]], &outcome));
      return minerva::ScenarioOutcomeWire::FromOutcome(outcome).Encode();
    }
    if (verb == "ctl.stats") {
      const NetworkStats& stats = engine.network().stats();
      ByteWriter writer;
      writer.PutVarint(stats.messages);
      writer.PutVarint(stats.bytes);
      writer.PutVarint(stats.hedges);
      writer.PutVarint(stats.hedges_won);
      MetricsRegistry& metrics = MetricsRegistry::Default();
      writer.PutVarint(metrics.GetCounter("cache.hits")->Value());
      writer.PutVarint(metrics.GetCounter("cache.misses")->Value());
      writer.PutVarint(metrics.GetCounter("cache.invalidations")->Value());
      return std::move(writer).Take();
    }
    if (verb == "ctl.shutdown") {
      MutexLock lock(&state.mu);
      state.shutdown = true;
      state.cv.NotifyAll();
      return Bytes{};
    }
    return Status::InvalidArgument("unknown control verb '" + verb + "'");
  });

  std::fprintf(stderr, "minervad: rank %u/%u serving %s on %s\n", rank,
               tcp->num_ranks(), spec.name.c_str(),
               tcp->listen_endpoint().c_str());
  {
    MutexLock lock(&state.mu);
    while (!state.shutdown) state.cv.Wait(&state.mu);
  }
  // Engine teardown shuts the transport (and its event loop) down.
  return 0;
}

}  // namespace
}  // namespace iqn

int main(int argc, char** argv) { return iqn::Main(argc, argv); }

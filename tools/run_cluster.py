#!/usr/bin/env python3
"""Boot a multi-process minervad cluster and run one scenario through it.

Usage:
  tools/run_cluster.py SPEC.json --build-dir build [--out REPORT.json]
      [--diff-simulator] [--port-base N] [--log-dir DIR]
      [--io-timeout-ms MS] [--connect-wait-ms MS]

The spec must declare a tcp transport with one endpoint per rank (see
scenarios/p2p_web_search.json). The launcher spawns one minervad per
endpoint, runs minerva_client against the cluster, and tears the
daemons down (the client sends ctl.shutdown; anything still alive gets
killed). Exit status is the client's, or 1 on launcher-level failure.

--diff-simulator additionally runs the SAME spec in-process on the
simulated transport (run_scenario, transport rewritten to "simulated")
and bench_diffs the two reports. The scenario results must be
bit-identical — that is the multiprocess CI gate. Process-local keys
(bench name, spec paths, metrics snapshots, memory accounting) are
ignored; every scenario measure, byte count, and the result
fingerprint are compared exactly.

--port-base rewrites every endpoint's port to base, base+1, ... in a
temporary spec so parallel CI jobs cannot collide on the checked-in
ports. Stdlib only; runs anywhere CI has a python3.
"""

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile

DIFF_IGNORES = ["bench", "workload.spec", "metrics", "resources.mem"]


def fail(msg):
    print(f"run_cluster: {msg}", file=sys.stderr)
    sys.exit(1)


def main(argv):
    parser = argparse.ArgumentParser(
        prog="run_cluster.py",
        description="Boot a minervad cluster and run one scenario.")
    parser.add_argument("spec", metavar="SPEC.json")
    parser.add_argument("--build-dir", default="build",
                        help="directory holding tools/minervad etc.")
    parser.add_argument("--out", default="",
                        help="cluster report path (default: temp file)")
    parser.add_argument("--diff-simulator", action="store_true",
                        help="also run the simulator leg and bench_diff "
                             "the two reports (bit-identity gate)")
    parser.add_argument("--port-base", type=int, default=0,
                        help="rewrite endpoint ports to N, N+1, ... "
                             "(0 = use the spec's ports)")
    parser.add_argument("--log-dir", default="",
                        help="keep daemon stderr logs here "
                             "(default: temp dir, deleted on success)")
    parser.add_argument("--io-timeout-ms", type=int, default=120000)
    parser.add_argument("--connect-wait-ms", type=int, default=30000)
    args = parser.parse_args(argv[1:])

    minervad = os.path.join(args.build_dir, "tools", "minervad")
    client = os.path.join(args.build_dir, "tools", "minerva_client")
    run_scenario = os.path.join(args.build_dir, "tools", "run_scenario")
    for binary in (minervad, client):
        if not os.access(binary, os.X_OK):
            fail(f"{binary} not built (--build-dir?)")

    try:
        with open(args.spec, "r", encoding="utf-8") as f:
            spec = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{args.spec}: {e}")
    transport = spec.get("transport", {})
    endpoints = transport.get("endpoints", [])
    if transport.get("kind") != "tcp" or not endpoints:
        fail(f"{args.spec}: needs transport.kind \"tcp\" with endpoints")

    tmp = tempfile.mkdtemp(prefix="iqn_cluster_")
    log_dir = args.log_dir or tmp
    os.makedirs(log_dir, exist_ok=True)
    ok = False
    try:
        spec_path = args.spec
        if args.port_base:
            endpoints = [
                f"{ep.rsplit(':', 1)[0]}:{args.port_base + i}"
                for i, ep in enumerate(endpoints)
            ]
            spec["transport"]["endpoints"] = endpoints
            spec_path = os.path.join(tmp, "spec_tcp.json")
            with open(spec_path, "w", encoding="utf-8") as f:
                json.dump(spec, f, indent=2)

        out = args.out or os.path.join(tmp, "cluster.json")
        daemons = []
        logs = []
        try:
            for rank in range(len(endpoints)):
                log = open(os.path.join(log_dir, f"minervad.{rank}.log"),
                           "w", encoding="utf-8")
                logs.append(log)
                daemons.append(subprocess.Popen(
                    [minervad, spec_path, f"--rank={rank}",
                     f"--io-timeout-ms={args.io_timeout_ms}",
                     f"--connect-wait-ms={args.connect_wait_ms}"],
                    stdout=log, stderr=log))
            print(f"run_cluster: {len(daemons)} daemons up, running client",
                  flush=True)
            rc = subprocess.call(
                [client, spec_path, "--no-spec", f"--out={out}",
                 f"--io-timeout-ms={args.io_timeout_ms}",
                 f"--connect-wait-ms={args.connect_wait_ms}"])
            for rank, proc in enumerate(daemons):
                try:
                    drc = proc.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    drc = proc.wait()
                    print(f"run_cluster: killed hung minervad rank {rank}",
                          file=sys.stderr)
                    rc = rc or 1
                if drc != 0:
                    print(f"run_cluster: minervad rank {rank} exited {drc} "
                          f"(see {log_dir}/minervad.{rank}.log)",
                          file=sys.stderr)
                    rc = rc or 1
        finally:
            for proc in daemons:
                if proc.poll() is None:
                    proc.kill()
            for log in logs:
                log.close()
        if rc != 0:
            sys.exit(rc)

        if args.diff_simulator:
            if not os.access(run_scenario, os.X_OK):
                fail(f"{run_scenario} not built (--build-dir?)")
            sim_spec = dict(spec)
            sim_spec["transport"] = {"kind": "simulated", "endpoints": []}
            sim_spec_path = os.path.join(tmp, "spec_sim.json")
            with open(sim_spec_path, "w", encoding="utf-8") as f:
                json.dump(sim_spec, f, indent=2)
            sim_out = os.path.join(tmp, "simulator.json")
            if subprocess.call([run_scenario, sim_spec_path, "--no-spec",
                                f"--out={sim_out}"]) != 0:
                fail("simulator leg failed")
            bench_diff = os.path.join(os.path.dirname(
                os.path.abspath(__file__)), "bench_diff.py")
            cmd = [sys.executable, bench_diff, sim_out, out,
                   "--allow-bench-mismatch"]
            for key in DIFF_IGNORES:
                cmd += ["--ignore", key]
            if subprocess.call(cmd) != 0:
                fail("cluster results drifted from the simulator")
            print("run_cluster: cluster == simulator (bit-identical)")
        ok = True
    finally:
        if ok and not args.log_dir:
            shutil.rmtree(tmp, ignore_errors=True)
        elif not ok:
            print(f"run_cluster: artifacts kept in {tmp}", file=sys.stderr)
    sys.exit(0)


if __name__ == "__main__":
    main(sys.argv)

// minerva_client: drive a minervad cluster through one scenario and
// emit the same bench report run_scenario produces on the simulator.
//
// Usage: minerva_client SPEC.json [--out=REPORT.json] [--no-spec]
//          [--io-timeout-ms=MS] [--connect-wait-ms=MS]
//
// The spec must declare a tcp transport; every endpoint must have a
// minervad rank serving it (tools/run_cluster.py boots them). The client
// runs the scenario's control plane over FrameClient connections:
//
//   1. ctl.ping + ctl.status on every rank (topology sanity: each rank
//      must report its expected rank, the same nranks/num_peers, and
//      the same adversary indices).
//   2. ctl.publish rank by rank — serial, so one rank's remote
//      directory posts never contend with another rank's publish.
//   3. ctl.reset_meters on every rank, mirroring RunScenario's
//      meter-only-the-query-phase discipline.
//   4. The query stream: for every round and stream position, send
//      ctl.run_query(pos) to the rank owning the initiator peer
//      (initiator % nranks) and fold the returned ScenarioOutcomeWire
//      through the same ScenarioCursor RunScenario uses.
//   5. ctl.stats on every rank; integer sums across ranks equal the
//      simulator's process-wide totals (charges are sender-side).
//   6. ctl.shutdown on every rank.
//
// Because the cursor arithmetic, outcome bits, and stream order are
// identical to RunScenario's, the "results" section is byte-identical
// to the simulator's run of the same spec with a simulated transport —
// that is the multiprocess CI gate (tools/bench_diff.py).

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "minerva/scenario.h"
#include "net/tcp_transport.h"
#include "util/bench_report.h"
#include "util/bytes.h"
#include "util/flags.h"
#include "util/json_value.h"

namespace iqn {
namespace {

Result<std::string> ReadTextFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  std::string contents;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    return Status::Internal("error reading " + path);
  }
  return contents;
}

struct RankStatus {
  uint64_t rank = 0;
  uint64_t nranks = 0;
  uint64_t num_peers = 0;
  bool published = false;
  std::vector<size_t> adversaries;
};

Result<RankStatus> DecodeStatus(const Bytes& bytes) {
  ByteReader reader(bytes);
  RankStatus status;
  IQN_RETURN_IF_ERROR(reader.GetVarint(&status.rank));
  IQN_RETURN_IF_ERROR(reader.GetVarint(&status.nranks));
  IQN_RETURN_IF_ERROR(reader.GetVarint(&status.num_peers));
  uint8_t published = 0;
  IQN_RETURN_IF_ERROR(reader.GetU8(&published));
  status.published = published != 0;
  uint64_t count = 0;
  IQN_RETURN_IF_ERROR(reader.GetVarint(&count));
  IQN_RETURN_IF_ERROR(reader.CheckCountFits(count, 1, "adversary indices"));
  status.adversaries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t idx = 0;
    IQN_RETURN_IF_ERROR(reader.GetVarint(&idx));
    status.adversaries.push_back(static_cast<size_t>(idx));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes in ctl.status response");
  }
  return status;
}

struct RankStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t hedges = 0;
  uint64_t hedges_won = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_invalidations = 0;
};

Result<RankStats> DecodeStats(const Bytes& bytes) {
  ByteReader reader(bytes);
  RankStats stats;
  IQN_RETURN_IF_ERROR(reader.GetVarint(&stats.messages));
  IQN_RETURN_IF_ERROR(reader.GetVarint(&stats.bytes));
  IQN_RETURN_IF_ERROR(reader.GetVarint(&stats.hedges));
  IQN_RETURN_IF_ERROR(reader.GetVarint(&stats.hedges_won));
  IQN_RETURN_IF_ERROR(reader.GetVarint(&stats.cache_hits));
  IQN_RETURN_IF_ERROR(reader.GetVarint(&stats.cache_misses));
  IQN_RETURN_IF_ERROR(reader.GetVarint(&stats.cache_invalidations));
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes in ctl.stats response");
  }
  return stats;
}

// A daemon binds its listen socket inside Engine::Create (so peer
// daemons can publish to it) but installs the control handler only
// once the engine is up — until then control calls fail Unimplemented.
// Treat that window (and a torn connection from a daemon that bound
// after our connect attempt raced it) as "still booting" and retry.
Status PingUntilReady(FrameClient* rank_client, int wait_ms) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(wait_ms);
  while (true) {
    Status ping = rank_client->Call("ctl.ping", {}).status();
    if (ping.ok() || (ping.code() != StatusCode::kUnimplemented &&
                      ping.code() != StatusCode::kUnavailable)) {
      return ping;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return ping;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

Result<minerva::ScenarioResult> RunCluster(
    const minerva::ScenarioSpec& spec,
    const std::vector<std::unique_ptr<FrameClient>>& ranks,
    int connect_wait_ms) {
  IQN_ASSIGN_OR_RETURN(minerva::ScenarioWorkload workload,
                       minerva::BuildScenarioWorkload(spec));
  const size_t num_peers = workload.collections.size();
  const size_t stream_len = workload.schedule.size();
  const size_t nranks = ranks.size();

  minerva::ScenarioResult result;
  result.spec = spec;

  for (size_t r = 0; r < nranks; ++r) {
    IQN_RETURN_IF_ERROR(PingUntilReady(ranks[r].get(), connect_wait_ms));
    IQN_ASSIGN_OR_RETURN(Bytes status_bytes,
                         ranks[r]->Call("ctl.status", {}));
    IQN_ASSIGN_OR_RETURN(RankStatus status, DecodeStatus(status_bytes));
    if (status.rank != r || status.nranks != nranks ||
        status.num_peers != num_peers) {
      return Status::FailedPrecondition(
          "endpoint " + std::to_string(r) + " reports rank " +
          std::to_string(status.rank) + "/" + std::to_string(status.nranks) +
          " with " + std::to_string(status.num_peers) +
          " peers; expected rank " + std::to_string(r) + "/" +
          std::to_string(nranks) + " with " + std::to_string(num_peers));
    }
    if (r == 0) {
      result.adversaries = status.adversaries;
    } else if (status.adversaries != result.adversaries) {
      return Status::FailedPrecondition(
          "rank " + std::to_string(r) +
          " derived different adversary indices than rank 0 — the ranks "
          "are not running the same spec");
    }
  }

  // Publish serially: rank r's publish sends remote directory posts,
  // and its peers' loop threads must be free to serve other ranks'
  // posts later — one publish in flight at a time keeps that trivially
  // deadlock-free.
  for (size_t r = 0; r < nranks; ++r) {
    IQN_RETURN_IF_ERROR(ranks[r]->Call("ctl.publish", {}).status());
  }
  for (size_t r = 0; r < nranks; ++r) {
    IQN_RETURN_IF_ERROR(ranks[r]->Call("ctl.reset_meters", {}).status());
  }

  minerva::ScenarioCursor cursor(spec.queries.rounds);
  for (size_t round = 0; round < spec.queries.rounds; ++round) {
    for (size_t pos = 0; pos < stream_len; ++pos) {
      size_t initiator = spec.queries.initiator >= 0
                             ? static_cast<size_t>(spec.queries.initiator)
                             : pos % num_peers;
      size_t owner = initiator % nranks;
      ByteWriter writer;
      writer.PutVarint(pos);
      IQN_ASSIGN_OR_RETURN(
          Bytes wire_bytes,
          ranks[owner]->Call("ctl.run_query", std::move(writer).Take()));
      IQN_ASSIGN_OR_RETURN(minerva::ScenarioOutcomeWire wire,
                           minerva::ScenarioOutcomeWire::Decode(wire_bytes));
      cursor.Apply(spec, round, wire);
    }
  }
  cursor.FinalizeInto(&result, stream_len);

  for (size_t r = 0; r < nranks; ++r) {
    IQN_ASSIGN_OR_RETURN(Bytes stats_bytes, ranks[r]->Call("ctl.stats", {}));
    IQN_ASSIGN_OR_RETURN(RankStats stats, DecodeStats(stats_bytes));
    result.messages += stats.messages;
    result.bytes += stats.bytes;
    result.hedges += stats.hedges;
    result.hedges_won += stats.hedges_won;
    result.cache_hits += stats.cache_hits;
    result.cache_misses += stats.cache_misses;
    result.cache_invalidations += stats.cache_invalidations;
  }
  return result;
}

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineString("out", "", "report JSON path (empty = stdout)");
  flags.DefineBool("no-spec", false,
                   "omit the canonical spec echo from the result JSON");
  flags.DefineInt("io-timeout-ms", 120000,
                  "socket timeout per control exchange (a ctl.run_query "
                  "spans the whole query)");
  flags.DefineInt("connect-wait-ms", 30000,
                  "how long to retry connecting to daemons still booting");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 1;
  }
  if (flags.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: %s SPEC.json [--out=REPORT.json] [--no-spec] "
                 "[--io-timeout-ms=MS] [--connect-wait-ms=MS]\n",
                 argv[0]);
    return 1;
  }
  const std::string& spec_path = flags.positional()[0];

  Result<std::string> text = ReadTextFile(spec_path);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 1;
  }
  Result<minerva::ScenarioSpec> spec_or =
      minerva::ParseScenarioSpec(text.value());
  if (!spec_or.ok()) {
    std::fprintf(stderr, "%s: %s\n", spec_path.c_str(),
                 spec_or.status().ToString().c_str());
    return 1;
  }
  const minerva::ScenarioSpec& spec = spec_or.value();
  if (spec.transport.kind != TransportKind::kTcp ||
      spec.transport.endpoints.empty()) {
    std::fprintf(stderr,
                 "%s: minerva_client needs a tcp transport with endpoints\n",
                 spec_path.c_str());
    return 1;
  }

  const int io_timeout_ms = static_cast<int>(flags.GetInt("io-timeout-ms"));
  const int connect_wait_ms =
      static_cast<int>(flags.GetInt("connect-wait-ms"));
  std::vector<std::unique_ptr<FrameClient>> ranks;
  ranks.reserve(spec.transport.endpoints.size());
  for (const std::string& endpoint : spec.transport.endpoints) {
    Result<std::unique_ptr<FrameClient>> client =
        FrameClient::Connect(endpoint, io_timeout_ms, connect_wait_ms);
    if (!client.ok()) {
      std::fprintf(stderr, "connect %s: %s\n", endpoint.c_str(),
                   client.status().ToString().c_str());
      return 1;
    }
    ranks.push_back(std::move(client).value());
  }

  Result<minerva::ScenarioResult> result =
      RunCluster(spec, ranks, connect_wait_ms);
  // Always try to shut the daemons down, even after a failed run, so the
  // launcher does not have to reap hung processes.
  for (size_t r = 0; r < ranks.size(); ++r) {
    if (Status down = ranks[r]->Call("ctl.shutdown", {}).status();
        !down.ok()) {
      std::fprintf(stderr, "ctl.shutdown rank %zu: %s\n", r,
                   down.ToString().c_str());
    }
  }
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", spec_path.c_str(),
                 result.status().ToString().c_str());
    return 1;
  }

  std::string json = minerva::ScenarioResultToJson(
      result.value(), /*include_spec=*/!flags.GetBool("no-spec"));
  Result<JsonValue> result_doc = ParseJson(json);
  if (!result_doc.ok()) {
    std::fprintf(stderr, "internal: result JSON does not re-parse: %s\n",
                 result_doc.status().ToString().c_str());
    return 1;
  }
  BenchReport report(
      "minerva_client",
      JsonValue::Object({{"spec", JsonValue::String(spec_path)},
                         {"scenario",
                          JsonValue::String(result.value().spec.name)}}));
  report.AddSection("results", std::move(result_doc).value());

  const std::string& out = flags.GetString("out");
  if (out.empty()) {
    std::fputs(report.ToJsonString().c_str(), stdout);
  } else {
    if (Status w = report.WriteFile(out); !w.ok()) {
      std::fprintf(stderr, "%s\n", w.ToString().c_str());
      return 1;
    }
    std::printf("%s: recall=%.4f over %zu queries across %zu ranks -> %s\n",
                result.value().spec.name.c_str(), result.value().mean_recall,
                result.value().queries_run, ranks.size(), out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace iqn

int main(int argc, char** argv) { return iqn::Main(argc, argv); }

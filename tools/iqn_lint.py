#!/usr/bin/env python3
"""iqn_lint: the unified lint rule engine of the IQN repo.

One engine, declarative rules, three suppression mechanisms — replacing
the accreted grep pipeline that used to live in tools/lint.sh (which is
now a thin wrapper over this script plus the clang-tidy sweep).

Usage:
  tools/iqn_lint.py                 lint the whole tree (same as --all)
  tools/iqn_lint.py --all           lint the whole tree
  tools/iqn_lint.py --changed-only  lint files changed vs HEAD + untracked
  tools/iqn_lint.py FILE...         lint specific files
  tools/iqn_lint.py --format=json   machine-readable findings
  tools/iqn_lint.py --list-rules    rule inventory with descriptions
  tools/iqn_lint.py --selftest      run the fixture suite (tools/lint_fixtures)

Exit status: 0 = clean, 1 = findings (or selftest failure), 2 = usage.

Suppressions (every mechanism requires a visible reason):
  * Line:  append "// NOLINT" or "// NOLINT(rule)" to the offending line
           (clang-tidy-compatible), or "// iqn-lint: allow=<rule> <reason>".
  * File:  "// iqn-lint: disable=<rule>[,<rule>...] <reason>" anywhere in
           the file disables those rules for the whole file. A disable
           without a reason is itself reported (bad-suppression).
  * Allowlist: rules carry a per-path allowlist with a reason string,
           declared in this file next to the rule — the audited escape
           hatch for whole files that legitimately break a rule (e.g.
           util/mutex.h wrapping std::mutex).

Fixtures (tools/lint_fixtures/<rule>/): each rule has trigger/clean/
suppressed fixture files; --selftest asserts triggers fire, cleans do
not, and suppression syntax is honored. Fixture files declare the path
the engine should pretend they live at via a first-line marker:
  // iqn-lint-fixture: path=src/whatever.cc
"""

import argparse
import fnmatch
import json
import os
import re
import subprocess
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURE_DIR = os.path.join(ROOT, "tools", "lint_fixtures")
SOURCE_EXTS = (".h", ".cc", ".cpp")
LINT_DIRS = ("src", "tests", "bench", "examples", "fuzz", "tools")

# --------------------------------------------------------------------------
# Findings and suppression plumbing


class Finding:
    def __init__(self, rule, path, line, text, message=""):
        self.rule = rule
        self.path = path
        self.line = line  # 1-based; 0 = whole file
        self.text = text.strip()
        self.message = message

    def human(self):
        loc = f"{self.path}:{self.line}" if self.line else self.path
        tail = f" ({self.message})" if self.message else ""
        return f"lint: [{self.rule}] {loc}:{self.text}{tail}"

    def as_dict(self):
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "text": self.text,
            "message": self.message,
        }


_DISABLE_RE = re.compile(r"iqn-lint:\s*disable=([\w,\-]+)(.*)")
_ALLOW_RE = re.compile(r"iqn-lint:\s*allow=([\w\-]+)")
_NOLINT_RE = re.compile(r"NOLINT(?:\(([^)]*)\))?")


def file_disabled_rules(lines, path):
    """Rules disabled file-wide, plus bad-suppression findings."""
    disabled, findings = set(), []
    for i, line in enumerate(lines, 1):
        m = _DISABLE_RE.search(line)
        if not m:
            continue
        rules = {r for r in m.group(1).split(",") if r}
        reason = m.group(2).strip()
        if not reason:
            findings.append(
                Finding("bad-suppression", path, i, line,
                        "file-scoped disable needs a reason after the rule list"))
            continue
        disabled |= rules
    return disabled, findings


def line_suppressed(line, rule):
    """True when a trailing NOLINT / iqn-lint: allow covers `rule`."""
    m = _NOLINT_RE.search(line)
    if m:
        inside = m.group(1)
        if inside is None or not inside.strip() or rule in re.split(
                r"[,\s]+", inside.strip()):
            return True
    m = _ALLOW_RE.search(line)
    return bool(m and m.group(1) == rule)


def is_comment_line(line):
    s = line.lstrip()
    return s.startswith("//") or s.startswith("*") or s.startswith("/*")


def path_in(path, prefixes):
    return any(path == p or path.startswith(p.rstrip("/") + "/")
               for p in prefixes)


# --------------------------------------------------------------------------
# Rule machinery


class Rule:
    """Base rule: path scoping, allowlist, suppression handling."""

    name = ""
    description = ""
    #: directories (repo-relative) the rule applies to
    paths = ()
    #: directories excluded even when under `paths`
    exclude_paths = ()
    #: file extensions the rule applies to
    exts = SOURCE_EXTS
    #: repo-relative path (or glob) -> reason; whole files exempted
    allowlist = {}
    #: skip lines that are comments before matching
    skip_comments = True

    def applies_to(self, path):
        if not path.endswith(tuple(self.exts)):
            return False
        if not path_in(path, self.paths):
            return False
        if self.exclude_paths and path_in(path, self.exclude_paths):
            return False
        for pattern in self.allowlist:
            if path == pattern or fnmatch.fnmatch(path, pattern):
                return False
        return True

    def check(self, path, lines):
        raise NotImplementedError


class RegexRule(Rule):
    """One regex, one finding per matching line."""

    pattern = None  # compiled regex
    message = ""

    def check(self, path, lines):
        out = []
        for i, line in enumerate(lines, 1):
            if self.skip_comments and is_comment_line(line):
                continue
            if self.pattern.search(line):
                out.append(Finding(self.name, path, i, line, self.message))
        return out


# --------------------------------------------------------------------------
# The rules — migrated from tools/lint.sh, plus the static-analysis set.


class NoRand(RegexRule):
    name = "no-rand"
    description = ("no libc rand()/srand(); use util/random.h "
                   "(seeded, portable)")
    paths = ("src", "tests", "fuzz")
    pattern = re.compile(r"(^|[^_\w])s?rand\s*\(")
    message = "use iqn::Rng (util/random.h)"


class NoAssert(RegexRule):
    name = "no-assert"
    description = ("no assert(); untrusted input gets a Status, broken "
                   "invariants get IQN_CHECK/IQN_DCHECK. static_assert ok")
    paths = ("src", "fuzz")
    pattern = re.compile(r"(^|[^_\w])assert\s*\(")
    message = "use IQN_CHECK / IQN_DCHECK (util/check.h)"


class NoRawThread(RegexRule):
    name = "no-raw-thread"
    description = ("no raw std::thread/jthread/async outside "
                   "util/thread_pool; all concurrency goes through "
                   "ThreadPool/Latch so shutdown, exception conversion, "
                   "and determinism hold everywhere")
    paths = ("src", "tests", "bench", "examples", "fuzz")
    pattern = re.compile(r"std::(jthread|thread|async)[^_\w]")
    allowlist = {
        "src/util/thread_pool.h": "the pool is the process's thread owner",
        "src/util/thread_pool.cc": "the pool is the process's thread owner",
    }
    message = "use ThreadPool (util/thread_pool.h)"


class IqnMetrics(RegexRule):
    name = "iqn-metrics"
    description = ("no raw std::atomic in net/ or minerva/; observable "
                   "state goes through the metrics registry so counters "
                   "show up in snapshots and sums stay deterministic")
    paths = ("src/net", "src/minerva")
    pattern = re.compile(r"std::atomic[<_]")
    message = "use Counter/Gauge (util/metrics.h)"


class NoRawRpc(RegexRule):
    name = "no-raw-rpc"
    description = ("no raw SimulatedNetwork::Rpc call sites outside net/; "
                   "every remote interaction goes through CallRpc so "
                   "retry/deadline/fault-context policy applies uniformly")
    paths = ("src",)
    exclude_paths = ("src/net",)
    pattern = re.compile(r"(->|\.)\s*Rpc\s*\(")
    message = "use CallRpc (net/rpc_policy.h)"


class NoDirectSimnet(RegexRule):
    name = "no-direct-simnet"
    description = ("no direct SimulatedNetwork construction outside net/ "
                   "and tests/; build transports declaratively via "
                   "CreateTransport(TransportOptions) so call sites stay "
                   "backend-agnostic (simulated today, tcp tomorrow)")
    paths = ("src", "bench", "tools", "examples")
    exclude_paths = ("src/net",)
    # Construction only: stack declarations, naked new, make_unique/shared.
    # Passing a SimulatedNetwork* / & someone else built is fine.
    pattern = re.compile(
        r"(new\s+SimulatedNetwork\b"
        r"|make_(?:unique|shared)\s*<\s*SimulatedNetwork\b"
        r"|\bSimulatedNetwork\s+[A-Za-z_])")
    message = "use CreateTransport (net/transport.h)"


class NoInternalInclude(RegexRule):
    name = "no-internal-include"
    description = ("examples/, bench/, and tools/ build against the public "
                   "facade only; minerva/internal/ headers are not API")
    paths = ("examples", "bench", "tools")
    pattern = re.compile(r'#include\s*"minerva/internal/')
    skip_comments = False
    message = "use the minerva::Engine facade (minerva/api.h)"


class NoNakedNew(Rule):
    name = "no-naked-new"
    description = ("no naked new outside factory wrappers; a `new T(...)` "
                   "must sit on, or directly under, a line handing "
                   "ownership to a smart pointer")
    paths = ("src", "fuzz")
    _NEW = re.compile(r"(^|[^_\w])new\s+[A-Za-z_][\w:<>]*\s*[({]")
    _OWNER = re.compile(r"unique_ptr|shared_ptr|make_unique|make_shared")

    def check(self, path, lines):
        out, prev = [], ""
        for i, line in enumerate(lines, 1):
            if is_comment_line(line):
                prev = line
                continue
            if (self._NEW.search(line) and not self._OWNER.search(line)
                    and not self._OWNER.search(prev)):
                out.append(Finding(self.name, path, i, line,
                                   "wrap in a smart pointer"))
            prev = line
        return out


class IncludeGuard(Rule):
    name = "include-guard"
    description = ("include guards must be IQN_<PATH>_H_ derived from the "
                   "path relative to src/ (or the repo root outside src/)")
    paths = ("src", "fuzz")
    exts = (".h",)

    def check(self, path, lines):
        rel = path[len("src/"):] if path.startswith("src/") else path
        want = "IQN_" + re.sub(r"[/.]", "_", rel.upper()) + "_"
        got = None
        for line in lines:
            if line.startswith("#ifndef"):
                parts = line.split()
                got = parts[1] if len(parts) > 1 else None
                break
        if got != want:
            return [Finding(self.name, path, 0,
                            f"guard is '{got or '<missing>'}', want '{want}'")]
        return []


class NoRawMutex(RegexRule):
    name = "no-raw-mutex"
    description = ("all locks in src/ use the annotated iqn::Mutex/"
                   "SharedMutex/MutexLock/CondVar (util/mutex.h) so Clang "
                   "thread-safety analysis can prove the lock discipline; "
                   "raw std:: primitives are invisible to it")
    paths = ("src",)
    pattern = re.compile(
        r"std::(recursive_mutex|recursive_timed_mutex|timed_mutex"
        r"|shared_timed_mutex|shared_mutex|mutex"
        r"|condition_variable_any|condition_variable"
        r"|lock_guard|unique_lock|scoped_lock|shared_lock)\b")
    allowlist = {
        "src/util/mutex.h":
            "the annotated wrapper itself — the one home of std::mutex",
        "src/util/mutex.cc":
            "CondVar::Wait adopts the wrapped native mutex",
    }
    message = "use iqn::Mutex / MutexLock (util/mutex.h)"


class Determinism(Rule):
    name = "determinism"
    description = ("no wall-clock or global RNG in library code "
                   "(system_clock, time(), rand, random_device, ...), and "
                   "no unordered-container iteration feeding routing "
                   "decisions (src/minerva, src/dht): query outcomes must "
                   "be a pure function of (inputs, seed)")
    paths = ("src",)
    _CLOCK = re.compile(
        r"std::chrono::(system_clock|high_resolution_clock)"
        r"|std::random_device"
        r"|(^|[^_\w])(gettimeofday|time|clock)\s*\(\s*(NULL|nullptr|0)?\s*\)"
        r"|std::time\b|std::rand\b")
    _UNORDERED = re.compile(r"std::unordered_(map|set|multimap|multiset)")
    _UNORDERED_PATHS = ("src/minerva", "src/dht")
    allowlist = {}

    def check(self, path, lines):
        out = []
        check_unordered = path_in(path, self._UNORDERED_PATHS)
        for i, line in enumerate(lines, 1):
            if is_comment_line(line):
                continue
            if self._CLOCK.search(line):
                out.append(Finding(
                    self.name, path, i, line,
                    "wall clock / global RNG: derive from the simulated "
                    "clock or a seeded iqn::Rng"))
            if check_unordered and self._UNORDERED.search(line):
                out.append(Finding(
                    self.name, path, i, line,
                    "unordered containers have scheduling-dependent "
                    "iteration order; routing layers use ordered "
                    "containers or sort before use"))
        return out


class StatusDiscard(Rule):
    name = "status-discard"
    description = ("Status-returning calls must be consumed: util/status.h "
                   "keeps [[nodiscard]] on Status/Result (the compiler "
                   "flags silent discards), and every explicit (void) "
                   "discard of a call carries a reason comment")
    paths = ("src",)
    _VOID_CALL = re.compile(r"\(void\)\s*[A-Za-z_][\w:.>\-]*\s*\(")
    _TRAILING_COMMENT = re.compile(r"//")

    def check(self, path, lines):
        out = []
        if path == "src/util/status.h":
            text = "\n".join(lines)
            for marker in ("class [[nodiscard]] Status",
                           "class [[nodiscard]] Result"):
                if marker not in text:
                    out.append(Finding(
                        self.name, path, 0, f"missing '{marker}'",
                        "the [[nodiscard]] attribute backs this rule; "
                        "removing it re-legalizes silent discards"))
        prev = ""
        for i, line in enumerate(lines, 1):
            if is_comment_line(line):
                prev = line
                continue
            if self._VOID_CALL.search(line):
                has_reason = (self._TRAILING_COMMENT.search(line)
                              or is_comment_line(prev))
                if not has_reason:
                    out.append(Finding(
                        self.name, path, i, line,
                        "explicit (void) discard of a call needs a reason "
                        "comment on or directly above the line"))
            prev = line
        return out


class ScenarioHarness(Rule):
    name = "scenario-harness"
    description = ("new benches define their workload as a scenario spec: "
                   "a bench/ file with its own main() must include "
                   "minerva/scenario.h and drive RunScenario instead of "
                   "hand-rolling corpus/topology/query plumbing (one "
                   "workload definition, shared with tools/run_scenario "
                   "and CI)")
    paths = ("bench",)
    exts = (".cc", ".cpp")
    # Benches that pre-date the scenario harness (PR 7). Migrate when a
    # bench is next reworked; do NOT add new entries for new benches.
    allowlist = {
        "bench/ablation_adaptive.cc": "pre-harness bench",
        "bench/ablation_aggregation.cc": "pre-harness bench",
        "bench/ablation_directory.cc": "pre-harness bench",
        "bench/ablation_freshness.cc": "pre-harness bench",
        "bench/ablation_heterogeneous.cc": "pre-harness bench",
        "bench/ablation_histogram.cc": "pre-harness bench",
        "bench/cache_effectiveness.cc": "pre-harness bench "
                                        "(scenarios/cache_zipf.json is the "
                                        "spec form)",
        "bench/dht_scaling.cc": "pre-harness bench",
        "bench/fig2_resemblance_error.cc": "pre-harness bench",
        "bench/fig3_recall.cc": "pre-harness bench",
        "bench/parallel_scaling.cc": "pre-harness bench",
        "bench/recall_under_failure.cc": "pre-harness bench "
                                         "(scenarios/chaos_baseline.json is "
                                         "the spec form)",
        "bench/synopsis_ops.cc": "google-benchmark microbench; no workload",
    }
    _MAIN = re.compile(r"^\s*int\s+main\s*\(")
    _INCLUDE = re.compile(r'#include\s+"minerva/scenario\.h"')

    def check(self, path, lines):
        main_line = None
        for i, line in enumerate(lines, 1):
            if is_comment_line(line):
                continue
            if self._INCLUDE.search(line):
                return []
            if main_line is None and self._MAIN.search(line):
                main_line = (i, line)
        if main_line is None:
            return []
        return [Finding(
            self.name, path, main_line[0], main_line[1],
            "bench binaries build their workload from a ScenarioSpec "
            "(minerva/scenario.h) so tools/run_scenario and CI can run "
            "the identical experiment")]


class BenchReportRule(Rule):
    name = "bench-report"
    description = ("every bench binary emits its measurements through the "
                   "unified BenchReport schema: a bench/ file with its own "
                   "main() must include util/bench_report.h so its output "
                   "is an iqn.bench_report.v1 document tools/bench_diff.py "
                   "can gate on (no allowlist — all benches are migrated; "
                   "google-benchmark microbenches have no own main() and "
                   "are naturally out of scope)")
    paths = ("bench",)
    exts = (".cc", ".cpp")
    _MAIN = re.compile(r"^\s*int\s+main\s*\(")
    _INCLUDE = re.compile(r'#include\s+"util/bench_report\.h"')

    def check(self, path, lines):
        main_line = None
        for i, line in enumerate(lines, 1):
            if is_comment_line(line):
                continue
            if self._INCLUDE.search(line):
                return []
            if main_line is None and self._MAIN.search(line):
                main_line = (i, line)
        if main_line is None:
            return []
        return [Finding(
            self.name, path, main_line[0], main_line[1],
            "write results with BenchReport (util/bench_report.h) so "
            "bench_diff.py and the CI perf gate can consume them")]


RULES = [
    NoRand(), NoAssert(), NoRawThread(), IqnMetrics(), NoRawRpc(),
    NoDirectSimnet(), NoInternalInclude(), NoNakedNew(), IncludeGuard(),
    NoRawMutex(), Determinism(), StatusDiscard(), ScenarioHarness(),
    BenchReportRule(),
]


# --------------------------------------------------------------------------
# Engine


def lint_text(path, text, rules=None):
    """Lint `text` as if it lived at repo-relative `path`."""
    lines = text.split("\n")
    disabled, findings = file_disabled_rules(lines, path)
    for rule in rules or RULES:
        if rule.name in disabled or not rule.applies_to(path):
            continue
        for f in rule.check(path, lines):
            if f.line and line_suppressed(lines[f.line - 1], rule.name):
                continue
            findings.append(f)
    return findings


def lint_file(relpath):
    try:
        with open(os.path.join(ROOT, relpath), encoding="utf-8",
                  errors="replace") as fh:
            return lint_text(relpath, fh.read())
    except OSError as e:
        return [Finding("io-error", relpath, 0, str(e))]


def tree_files():
    out = []
    for top in LINT_DIRS:
        for dirpath, _, names in os.walk(os.path.join(ROOT, top)):
            if "lint_fixtures" in dirpath:
                continue  # fixtures violate rules on purpose
            for name in sorted(names):
                if name.endswith(SOURCE_EXTS):
                    out.append(os.path.relpath(os.path.join(dirpath, name),
                                               ROOT))
    return sorted(out)


def changed_files():
    def git(*args):
        return subprocess.run(["git", *args], cwd=ROOT, check=False,
                              capture_output=True,
                              text=True).stdout.splitlines()

    paths = set(git("diff", "--name-only", "HEAD", "--"))
    paths |= set(git("ls-files", "--others", "--exclude-standard"))
    return sorted(p for p in paths
                  if p.endswith(SOURCE_EXTS) and path_in(p, LINT_DIRS)
                  and "lint_fixtures" not in p
                  and os.path.exists(os.path.join(ROOT, p)))


# --------------------------------------------------------------------------
# Selftest: fixture-driven, one directory per rule.

_FIXTURE_PATH_RE = re.compile(r"iqn-lint-fixture:\s*path=(\S+)")


def run_selftest():
    failures = []
    fixture_rules = set()
    if not os.path.isdir(FIXTURE_DIR):
        print(f"selftest: fixture dir missing: {FIXTURE_DIR}")
        return 1
    for rule_name in sorted(os.listdir(FIXTURE_DIR)):
        rule_dir = os.path.join(FIXTURE_DIR, rule_name)
        if not os.path.isdir(rule_dir):
            continue
        fixture_rules.add(rule_name)
        for fname in sorted(os.listdir(rule_dir)):
            fpath = os.path.join(rule_dir, fname)
            with open(fpath, encoding="utf-8") as fh:
                text = fh.read()
            m = _FIXTURE_PATH_RE.search(text.split("\n", 1)[0])
            if not m:
                failures.append(f"{rule_name}/{fname}: missing "
                                "'// iqn-lint-fixture: path=...' header")
                continue
            virtual = m.group(1)
            hits = [f for f in lint_text(virtual, text)
                    if f.rule == rule_name]
            if fname.startswith("trigger") and not hits:
                failures.append(
                    f"{rule_name}/{fname}: expected >=1 {rule_name} "
                    f"finding at path {virtual}, got none")
            elif fname.startswith(("clean", "suppressed")) and hits:
                failures.append(
                    f"{rule_name}/{fname}: expected 0 {rule_name} findings, "
                    f"got {len(hits)}: {hits[0].human()}")
    missing = {r.name for r in RULES} - fixture_rules
    if missing:
        failures.append("rules without fixtures: " + ", ".join(sorted(missing)))
    stale = fixture_rules - {r.name for r in RULES}
    if stale:
        failures.append("fixtures for unknown rules: " +
                        ", ".join(sorted(stale)))
    if failures:
        for f in failures:
            print(f"selftest FAIL: {f}")
        return 1
    print(f"selftest: OK ({len(fixture_rules)} rules, fixtures all behave)")
    return 0


# --------------------------------------------------------------------------


def main(argv):
    ap = argparse.ArgumentParser(
        prog="iqn_lint.py",
        description="Unified lint rule engine (see file docstring).")
    ap.add_argument("files", nargs="*", help="specific files to lint")
    ap.add_argument("--all", action="store_true",
                    help="lint the whole tree (default when no files given)")
    ap.add_argument("--changed-only", action="store_true",
                    help="lint files changed vs HEAD plus untracked files")
    ap.add_argument("--format", choices=("human", "json"), default="human")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--selftest", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            scope = ", ".join(rule.paths)
            print(f"{rule.name:20} [{scope}]")
            print(f"{'':20}   {rule.description}")
            for path, reason in sorted(rule.allowlist.items()):
                print(f"{'':20}   allowlisted: {path} — {reason}")
        return 0

    if args.selftest:
        return run_selftest()

    if args.files:
        targets = [os.path.relpath(os.path.abspath(f), ROOT)
                   for f in args.files]
    elif args.changed_only:
        targets = changed_files()
    else:
        targets = tree_files()

    findings = []
    for path in targets:
        findings.extend(lint_file(path))

    if args.format == "json":
        print(json.dumps({"findings": [f.as_dict() for f in findings],
                          "files_checked": len(targets)}, indent=2))
    else:
        for f in findings:
            print(f.human())
        status = "FAILED" if findings else "OK"
        print(f"lint: {status} ({len(targets)} files, "
              f"{len(findings)} findings)")
    return 1 if findings else 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv[1:]))
    except BrokenPipeError:
        # e.g. `iqn_lint.py --list-rules | head`: the reader closed the
        # pipe; exit quietly instead of tracebacking. Route stdout to
        # devnull so the interpreter's shutdown flush cannot re-raise.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        sys.exit(0)

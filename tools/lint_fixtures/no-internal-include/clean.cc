// iqn-lint-fixture: path=bench/fixture.cc
#include "minerva/api.h"

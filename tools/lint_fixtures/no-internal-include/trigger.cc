// iqn-lint-fixture: path=bench/fixture.cc
#include "minerva/internal/router.h"

// iqn-lint-fixture: path=bench/fixture.cc
#include "minerva/internal/router.h"  // NOLINT(no-internal-include) fixture

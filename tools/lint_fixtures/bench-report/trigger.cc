// iqn-lint-fixture: path=bench/new_bench.cc
#include <cstdio>
#include "minerva/scenario.h"
int main(int argc, char** argv) {
  std::printf("prints tables but never writes a BenchReport\n");
  return 0;
}

// iqn-lint-fixture: path=bench/new_bench.cc
// iqn-lint: disable=bench-report fixture exercising the file-scoped disable
#include <cstdio>
#include "minerva/scenario.h"
int main(int argc, char** argv) {
  std::printf("suppressed\n");
  return 0;
}

// iqn-lint-fixture: path=bench/bench_helpers.cc
// A bench/ helper translation unit without its own main() is not a
// bench binary and emits no report. Covers google-benchmark
// microbenches too: BENCHMARK_MAIN() expands without a literal
// "int main(" line.
#include <cstddef>
size_t Twice(size_t n) { return 2 * n; }

// iqn-lint-fixture: path=bench/new_bench.cc
#include <cstdio>
#include "minerva/scenario.h"
#include "util/bench_report.h"
int main(int argc, char** argv) {
  std::printf("emits an iqn.bench_report.v1 document\n");
  return 0;
}

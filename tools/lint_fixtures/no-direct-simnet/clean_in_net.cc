// iqn-lint-fixture: path=src/net/fixture.cc
#include "net/network.h"
void Run() {
  iqn::SimulatedNetwork net;  // net/ owns the backend; construction is fine here
}

// iqn-lint-fixture: path=src/minerva/fixture.cc
#include "net/network.h"
void Run() {
  iqn::SimulatedNetwork net;  // iqn-lint: allow=no-direct-simnet fixture: inline allow syntax
}

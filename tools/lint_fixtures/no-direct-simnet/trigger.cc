// iqn-lint-fixture: path=src/minerva/fixture.cc
#include "net/network.h"
void Run() {
  iqn::SimulatedNetwork net;
  auto owned = std::make_unique<iqn::SimulatedNetwork>();
  auto* leaked = new iqn::SimulatedNetwork();
  (void)leaked;
}

// iqn-lint-fixture: path=src/minerva/fixture.cc
#include "net/transport.h"
void Run(iqn::SimulatedNetwork* borrowed, const iqn::SimulatedNetwork& view) {
  auto net = iqn::CreateTransport(iqn::TransportOptions{});
  (void)borrowed;
  (void)view;
}

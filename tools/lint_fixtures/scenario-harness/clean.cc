// iqn-lint-fixture: path=bench/new_bench.cc
#include <cstdio>
#include "minerva/scenario.h"
int main(int argc, char** argv) {
  auto spec = minerva::ParseScenarioSpec("{}");
  return spec.ok() ? 0 : 1;
}

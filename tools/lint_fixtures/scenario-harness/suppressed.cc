// iqn-lint-fixture: path=bench/new_bench.cc
// iqn-lint: disable=scenario-harness fixture exercising the file-scoped disable
#include <cstdio>
int main(int argc, char** argv) {
  std::printf("suppressed\n");
  return 0;
}

// iqn-lint-fixture: path=bench/bench_helpers.cc
// A bench/ helper translation unit without its own main() is not a
// bench binary and needs no scenario spec.
#include <cstddef>
size_t Twice(size_t n) { return 2 * n; }

// iqn-lint-fixture: path=bench/new_bench.cc
#include <cstdio>
#include "minerva/api.h"
int main(int argc, char** argv) {
  std::printf("hand-rolled workload, no scenario spec\n");
  return 0;
}

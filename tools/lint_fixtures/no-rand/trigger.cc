// iqn-lint-fixture: path=src/workload/fixture.cc
int Roll() { return rand(); }

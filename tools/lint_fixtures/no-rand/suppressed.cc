// iqn-lint-fixture: path=src/workload/fixture.cc
int Roll() { return rand(); }  // NOLINT(no-rand) fixture: suppression syntax

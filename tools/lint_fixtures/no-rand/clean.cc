// iqn-lint-fixture: path=src/workload/fixture.cc
#include "util/random.h"
uint64_t Roll(iqn::Rng* rng) { return rng->Next(); }

// iqn-lint-fixture: path=src/dht/fixture.h
#ifndef WRONG_GUARD_H
#define WRONG_GUARD_H
#endif  // WRONG_GUARD_H

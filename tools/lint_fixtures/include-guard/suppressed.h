// iqn-lint-fixture: path=src/dht/fixture.h
// iqn-lint: disable=include-guard fixture exercising the file-scoped disable
#ifndef WRONG_GUARD_H
#define WRONG_GUARD_H
#endif  // WRONG_GUARD_H

// iqn-lint-fixture: path=src/dht/fixture.h
#ifndef IQN_DHT_FIXTURE_H_
#define IQN_DHT_FIXTURE_H_
#endif  // IQN_DHT_FIXTURE_H_

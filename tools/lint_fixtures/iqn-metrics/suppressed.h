// iqn-lint-fixture: path=src/net/fixture.h
#ifndef IQN_NET_FIXTURE_H_
#define IQN_NET_FIXTURE_H_
#include <atomic>
struct Guard { std::atomic<int> refs{0}; };  // NOLINT(iqn-metrics) RAII refcount
#endif  // IQN_NET_FIXTURE_H_

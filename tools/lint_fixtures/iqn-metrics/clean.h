// iqn-lint-fixture: path=src/net/fixture.h
#ifndef IQN_NET_FIXTURE_H_
#define IQN_NET_FIXTURE_H_
#include "util/metrics.h"
struct Stats { iqn::Counter hits; };
#endif  // IQN_NET_FIXTURE_H_

// iqn-lint-fixture: path=src/net/fixture.h
#ifndef IQN_NET_FIXTURE_H_
#define IQN_NET_FIXTURE_H_
#include <atomic>
struct Stats { std::atomic<int> hits{0}; };
#endif  // IQN_NET_FIXTURE_H_

// iqn-lint-fixture: path=src/ir/fixture.cc
#include <unordered_map>
// Unordered containers are fine outside the routing layers as scratch
// space whose iteration order never reaches a decision.
std::unordered_map<int, double> g_acc;

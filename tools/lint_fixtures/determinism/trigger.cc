// iqn-lint-fixture: path=src/minerva/fixture.cc
#include <chrono>
#include <random>
#include <unordered_map>
double Now() {
  auto t = std::chrono::system_clock::now();
  return static_cast<double>(t.time_since_epoch().count());
}
uint64_t Seed() { return std::random_device{}(); }
std::unordered_map<int, double> g_scores;

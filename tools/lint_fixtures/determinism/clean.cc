// iqn-lint-fixture: path=src/minerva/fixture.cc
#include <map>
#include "util/random.h"
double Now(double simulated_latency_ms) { return simulated_latency_ms; }
uint64_t Seed(iqn::Rng* rng) { return rng->Next(); }
std::map<int, double> g_scores;

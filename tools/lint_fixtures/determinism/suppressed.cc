// iqn-lint-fixture: path=src/minerva/fixture.cc
#include <chrono>
// iqn-lint: disable=determinism fixture exercising the file-scoped disable
double Now() {
  auto t = std::chrono::system_clock::now();
  return static_cast<double>(t.time_since_epoch().count());
}

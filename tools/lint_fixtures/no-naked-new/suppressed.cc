// iqn-lint-fixture: path=src/ir/fixture.cc
struct Foo { int x; };
Foo* Make() { return new Foo(); }  // NOLINT(no-naked-new) fixture: arena-owned

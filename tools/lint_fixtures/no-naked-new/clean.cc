// iqn-lint-fixture: path=src/ir/fixture.cc
#include <memory>
struct Foo { explicit Foo(int) {} };
std::unique_ptr<Foo> Make() {
  auto owned = std::make_unique<Foo>(1);
  return std::unique_ptr<Foo>(
      new Foo(2));
}

// iqn-lint-fixture: path=src/minerva/fixture.cc
#include <thread>
void Run() { std::thread t([] {}); t.join(); }  // NOLINT fixture: bare NOLINT

// iqn-lint-fixture: path=src/minerva/fixture.cc
#include "util/thread_pool.h"
void Run(iqn::ThreadPool* pool) {
  (void)pool->ParallelFor(0, 8, 1, [](size_t, size_t) {  // fixture
    return iqn::Status::OK();
  });
}

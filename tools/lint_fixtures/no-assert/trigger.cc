// iqn-lint-fixture: path=src/ir/fixture.cc
void Check(int x) { assert(x > 0); }

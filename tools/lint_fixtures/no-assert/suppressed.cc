// iqn-lint-fixture: path=src/ir/fixture.cc
// iqn-lint: disable=no-assert fixture exercising the file-scoped disable
void Check(int x) { assert(x > 0); }

// iqn-lint-fixture: path=src/ir/fixture.cc
#include "util/check.h"
static_assert(sizeof(int) >= 4, "fixture");
void Check(int x) { IQN_CHECK_GT(x, 0); }

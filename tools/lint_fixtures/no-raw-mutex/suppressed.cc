// iqn-lint-fixture: path=src/minerva/fixture.cc
#include <mutex>
struct Thing {
  std::mutex mu;  // iqn-lint: allow=no-raw-mutex fixture: inline allow syntax
};

// iqn-lint-fixture: path=src/minerva/fixture.cc
#include <mutex>
struct Thing {
  std::mutex mu;
  void Poke() { std::lock_guard<std::mutex> lock(mu); }
};

// iqn-lint-fixture: path=src/minerva/fixture.cc
#include "util/mutex.h"
struct Thing {
  iqn::Mutex mu;
  int x IQN_GUARDED_BY(mu) = 0;
  void Poke() {
    iqn::MutexLock lock(&mu);
    ++x;
  }
};

// iqn-lint-fixture: path=src/minerva/fixture.cc
#include "net/network.h"
void Send(iqn::SimulatedNetwork* net, iqn::NodeAddress a, iqn::NodeAddress b) {
  (void)net->Rpc(a, b, "fixture", {});  // discard reason: fixture
}

// iqn-lint-fixture: path=src/minerva/fixture.cc
#include "net/rpc_policy.h"
void Send(iqn::SimulatedNetwork* net, iqn::NodeAddress a, iqn::NodeAddress b) {
  (void)CallRpc(net, a, b, "fixture", {});  // discard reason: fixture
}

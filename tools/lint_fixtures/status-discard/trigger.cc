// iqn-lint-fixture: path=src/minerva/fixture.cc
#include "util/status.h"
iqn::Status Do();
void Run() {
  (void)Do();
}

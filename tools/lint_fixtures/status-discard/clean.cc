// iqn-lint-fixture: path=src/minerva/fixture.cc
#include "util/status.h"
iqn::Status Do();
void Run() {
  (void)Do();  // best effort: retried by the next round
  // Best effort: the comment-above form also counts as a reason.
  (void)Do();
}

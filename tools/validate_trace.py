#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file produced by --trace_out.

Checks the subset of the trace_event format this repo emits (complete
"X" events, JSON-object array under "traceEvents") plus IQN-specific
invariants: at least one "query" span, at least one "iqn.iteration"
span, non-negative microsecond timestamps/durations, and child spans
contained within their trace's "query" root.

With --folded, also validates a folded-stack file produced by
--profile_out: structural checks (one "frame;frame;... count" line per
path, integer counts, a "query" root), and — when a trace file is given
alongside — an exact replay of the profiler's exclusive-time
computation from the trace's sid/spid span tree. The replay uses the
same double arithmetic as src/util/profiler.cc (durations in the
microsecond domain, children subtracted in span-id order, paths
accumulated in encounter order, rounded floor(x + 0.5) after clamping
at zero), so the comparison is bit-exact, not approximate.

Usage: tools/validate_trace.py TRACE.json [TRACE2.json ...]
       tools/validate_trace.py --folded FOLDED.txt [TRACE.json]
Exits nonzero (with a message on stderr) on the first violation.
Stdlib only; runs anywhere CI has a python3.
"""

import json
import math
import sys


def fail(path, message):
    print(f"validate_trace: {path}: {message}", file=sys.stderr)
    sys.exit(1)


REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "dur", "pid", "tid")


def load_events(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"not readable JSON: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(path, 'top level must be an object with a "traceEvents" key')
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(path, '"traceEvents" must be an array')
    if not events:
        fail(path, "trace contains no events (was tracing enabled?)")
    return events


def validate(path):
    events = load_events(path)

    # Per-tid extent of the "query" root; children must nest inside it.
    query_extent = {}
    names = set()
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(path, f"event #{i} is not an object")
        for key in REQUIRED_EVENT_KEYS:
            if key not in ev:
                fail(path, f'event #{i} missing required key "{key}"')
        if ev["ph"] != "X":
            fail(path, f'event #{i} has ph "{ev["ph"]}"; only complete '
                       '"X" events are emitted')
        if not isinstance(ev["name"], str) or not ev["name"]:
            fail(path, f"event #{i} has an empty or non-string name")
        for key in ("ts", "dur"):
            if not isinstance(ev[key], (int, float)) or ev[key] < 0:
                fail(path, f'event #{i} has invalid "{key}": {ev[key]!r}')
        if "args" in ev and not isinstance(ev["args"], dict):
            fail(path, f'event #{i} "args" must be an object')
        names.add(ev["name"])
        if ev["name"] == "query":
            query_extent[ev["tid"]] = (ev["ts"], ev["ts"] + ev["dur"])

    for required in ("query", "iqn.iteration"):
        if required not in names:
            fail(path, f'no "{required}" event found; the trace must cover '
                       "at least one routed query")

    for i, ev in enumerate(events):
        extent = query_extent.get(ev["tid"])
        if extent is None:
            fail(path, f'event #{i} ("{ev["name"]}") on tid {ev["tid"]} '
                       'has no "query" root span')
        lo, hi = extent
        # The writer converts simulated ms to us in floating point;
        # allow the resulting last-ulp noise when checking containment.
        eps = 1e-6 + 1e-9 * max(abs(lo), abs(hi))
        if ev["ts"] < lo - eps or ev["ts"] + ev["dur"] > hi + eps:
            fail(path, f'event #{i} ("{ev["name"]}") '
                       f'[{ev["ts"]}, {ev["ts"] + ev["dur"]}] escapes its '
                       f'"query" root [{lo}, {hi}]')

    print(f"validate_trace: {path}: OK "
          f"({len(events)} events, {len(query_extent)} queries)")


def parse_folded(path):
    """Returns {stack_path: count} after structural validation."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(path, f"not readable: {e}")
    if not lines:
        fail(path, "folded file is empty (was profiling enabled?)")
    folded = {}
    for i, line in enumerate(lines):
        stack, sep, count = line.rpartition(" ")
        if not sep or not stack:
            fail(path, f'line {i + 1} is not "stack count": {line!r}')
        if not count.isdigit():
            fail(path, f"line {i + 1} has a non-integer count: {count!r}")
        frames = stack.split(";")
        if any(not frame for frame in frames):
            fail(path, f"line {i + 1} has an empty frame: {stack!r}")
        if stack in folded:
            fail(path, f"line {i + 1} repeats stack {stack!r}")
        folded[stack] = int(count)
    if not any(s == "query" or s.startswith("query;") for s in folded):
        fail(path, 'no stack rooted at "query" found')
    return folded


def refold_from_trace(trace_path):
    """Replays src/util/profiler.cc BuildProfile from a Chrome trace.

    Uses the sid/spid extension keys for the exact parent edges and the
    emitted "dur" doubles (shortest-round-trip, so json.load returns
    the identical double) to reproduce the folded counts bit-exactly.
    """
    events = load_events(trace_path)
    per_trace = {}   # tid -> [(sid, spid, name, dur)]
    tid_order = []
    for i, ev in enumerate(events):
        if "sid" not in ev or "spid" not in ev:
            fail(trace_path, f"event #{i} lacks sid/spid keys; trace is too "
                             "old for folded validation")
        if ev["tid"] not in per_trace:
            per_trace[ev["tid"]] = []
            tid_order.append(ev["tid"])
        per_trace[ev["tid"]].append(
            (ev["sid"], ev["spid"], ev["name"], float(ev["dur"])))

    folded = {}
    for tid in tid_order:
        spans = per_trace[tid]
        spans.sort(key=lambda s: s[0])
        exclusive = {}
        paths = {}
        for sid, spid, name, dur in spans:
            exclusive[sid] = dur
            if spid != 0:
                if spid not in exclusive:
                    fail(trace_path, f"span {sid} (tid {tid}) references "
                                     f"unknown parent {spid}")
                exclusive[spid] -= dur
                paths[sid] = paths[spid] + ";" + name
            else:
                paths[sid] = name
        for sid, _, _, _ in spans:
            folded[paths[sid]] = folded.get(paths[sid], 0.0) + exclusive[sid]
    return {path: math.floor(max(0.0, us) + 0.5)
            for path, us in folded.items()}


def validate_folded(folded_path, trace_path):
    folded = parse_folded(folded_path)
    if trace_path is None:
        print(f"validate_trace: {folded_path}: OK ({len(folded)} stacks)")
        return
    expected = refold_from_trace(trace_path)
    if folded != expected:
        for stack in sorted(set(folded) | set(expected)):
            got, want = folded.get(stack), expected.get(stack)
            if got != want:
                print(f"  {stack}: folded={got} trace={want}",
                      file=sys.stderr)
        fail(folded_path, f"folded counts disagree with {trace_path}")
    print(f"validate_trace: {folded_path}: OK ({len(folded)} stacks, "
          f"exact match with {trace_path})")


def main(argv):
    args = argv[1:]
    if args and args[0] == "--folded":
        if len(args) not in (2, 3):
            print(__doc__, file=sys.stderr)
            return 2
        validate_folded(args[1], args[2] if len(args) == 3 else None)
        return 0
    if not args:
        print(__doc__, file=sys.stderr)
        return 2
    for path in args:
        validate(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

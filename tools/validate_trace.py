#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file produced by --trace_out.

Checks the subset of the trace_event format this repo emits (complete
"X" events, JSON-object array under "traceEvents") plus IQN-specific
invariants: at least one "query" span, at least one "iqn.iteration"
span, non-negative microsecond timestamps/durations, and child spans
contained within their trace's "query" root.

Usage: tools/validate_trace.py TRACE.json [TRACE2.json ...]
Exits nonzero (with a message on stderr) on the first violation.
Stdlib only; runs anywhere CI has a python3.
"""

import json
import sys


def fail(path, message):
    print(f"validate_trace: {path}: {message}", file=sys.stderr)
    sys.exit(1)


REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "dur", "pid", "tid")


def validate(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"not readable JSON: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(path, 'top level must be an object with a "traceEvents" key')
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(path, '"traceEvents" must be an array')
    if not events:
        fail(path, "trace contains no events (was tracing enabled?)")

    # Per-tid extent of the "query" root; children must nest inside it.
    query_extent = {}
    names = set()
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(path, f"event #{i} is not an object")
        for key in REQUIRED_EVENT_KEYS:
            if key not in ev:
                fail(path, f'event #{i} missing required key "{key}"')
        if ev["ph"] != "X":
            fail(path, f'event #{i} has ph "{ev["ph"]}"; only complete '
                       '"X" events are emitted')
        if not isinstance(ev["name"], str) or not ev["name"]:
            fail(path, f"event #{i} has an empty or non-string name")
        for key in ("ts", "dur"):
            if not isinstance(ev[key], (int, float)) or ev[key] < 0:
                fail(path, f'event #{i} has invalid "{key}": {ev[key]!r}')
        if "args" in ev and not isinstance(ev["args"], dict):
            fail(path, f'event #{i} "args" must be an object')
        names.add(ev["name"])
        if ev["name"] == "query":
            query_extent[ev["tid"]] = (ev["ts"], ev["ts"] + ev["dur"])

    for required in ("query", "iqn.iteration"):
        if required not in names:
            fail(path, f'no "{required}" event found; the trace must cover '
                       "at least one routed query")

    for i, ev in enumerate(events):
        extent = query_extent.get(ev["tid"])
        if extent is None:
            fail(path, f'event #{i} ("{ev["name"]}") on tid {ev["tid"]} '
                       'has no "query" root span')
        lo, hi = extent
        # The writer converts simulated ms to us in floating point;
        # allow the resulting last-ulp noise when checking containment.
        eps = 1e-6 + 1e-9 * max(abs(lo), abs(hi))
        if ev["ts"] < lo - eps or ev["ts"] + ev["dur"] > hi + eps:
            fail(path, f'event #{i} ("{ev["name"]}") '
                       f'[{ev["ts"]}, {ev["ts"] + ev["dur"]}] escapes its '
                       f'"query" root [{lo}, {hi}]')

    print(f"validate_trace: {path}: OK "
          f"({len(events)} events, {len(query_extent)} queries)")


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    for path in argv[1:]:
        validate(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

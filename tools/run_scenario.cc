// run_scenario: execute one declarative scenario spec (minerva/scenario.h)
// and emit its result as a unified bench report (util/bench_report.h).
//
// Usage: run_scenario SPEC.json [--out=REPORT.json] [--no-spec]
//          [--threads=N] [--canonicalize] [--metrics_out=PATH]
//          [--trace_out=PATH] [--profile_out=PATH]
//
//   --out           write the report JSON here (default: stdout)
//   --no-spec       omit the canonical spec echo from the result
//   --threads       override engine.threads (0 = use the spec's value);
//                   results are bit-identical either way — this exists so
//                   CI can run the same specs under TSan with real
//                   concurrency without editing them
//   --canonicalize  print the spec's canonical full form and exit without
//                   running (how the checked-in scenarios/*.json were
//                   produced; the golden tests pin parse -> emit on them)
//   --metrics_out   write a metrics-registry snapshot JSON to this path
//   --trace_out     write a Chrome trace_event JSON of every query to
//                   this path (forces engine.collect_traces)
//   --profile_out   write flamegraph folded stacks of every query to
//                   this path (forces engine.collect_traces)
//
// The report wraps the scenario result under its "results" section; the
// sink paths that were actually written are recorded under "sinks".
// tools/bench_diff.py compares two reports key by key.
//
// The exit status is 0 on success, 1 on any parse/validation/run error —
// errors are descriptive Statuses on stderr, so a typoed spec names the
// offending key.

#include <cstdio>
#include <string>
#include <vector>

#include "minerva/scenario.h"
#include "util/bench_report.h"
#include "util/flags.h"
#include "util/json_value.h"
#include "util/mem_stats.h"
#include "util/metrics.h"
#include "util/profiler.h"
#include "util/trace.h"

namespace iqn {
namespace {

Result<std::string> ReadTextFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  std::string contents;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    return Status::Internal("error reading " + path);
  }
  return contents;
}

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineString("out", "", "report JSON path (empty = stdout)");
  flags.DefineBool("no-spec", false,
                   "omit the canonical spec echo from the result JSON");
  flags.DefineInt("threads", 0,
                  "override engine.threads (0 = use the spec's value)");
  flags.DefineBool("canonicalize", false,
                   "print the canonical spec form and exit without running");
  flags.DefineString("metrics_out", "",
                     "write a metrics-registry snapshot JSON to this path");
  flags.DefineString("trace_out", "",
                     "write a Chrome trace_event JSON of all queries to "
                     "this path (forces tracing)");
  flags.DefineString("profile_out", "",
                     "write flamegraph folded stacks of all queries to "
                     "this path (forces tracing)");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 1;
  }
  if (flags.positional().size() != 1) {
    std::fprintf(stderr, "usage: %s SPEC.json [--out=REPORT.json] "
                 "[--no-spec] [--threads=N] [--canonicalize] "
                 "[--metrics_out=PATH] [--trace_out=PATH] "
                 "[--profile_out=PATH]\n", argv[0]);
    return 1;
  }
  const std::string& spec_path = flags.positional()[0];

  Result<std::string> text = ReadTextFile(spec_path);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 1;
  }
  Result<minerva::ScenarioSpec> spec =
      minerva::ParseScenarioSpec(text.value());
  if (!spec.ok()) {
    std::fprintf(stderr, "%s: %s\n", spec_path.c_str(),
                 spec.status().ToString().c_str());
    return 1;
  }
  if (flags.GetBool("canonicalize")) {
    std::fputs(minerva::EmitScenarioSpec(spec.value()).c_str(), stdout);
    return 0;
  }
  if (flags.GetInt("threads") > 0) {
    spec.value().engine.threads =
        static_cast<size_t>(flags.GetInt("threads"));
  }
  const std::string& metrics_out = flags.GetString("metrics_out");
  const std::string& trace_out = flags.GetString("trace_out");
  const std::string& profile_out = flags.GetString("profile_out");
  // Trace-derived sinks need traces regardless of what the spec says;
  // collect_traces is result-invariant, so forcing it cannot change the
  // measured numbers (the determinism tests pin outcomes, and the spec
  // echo still shows the spec's own value).
  if (!trace_out.empty() || !profile_out.empty()) {
    spec.value().engine.collect_traces = true;
  }

  Result<minerva::ScenarioResult> result =
      minerva::RunScenario(spec.value());
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", spec_path.c_str(),
                 result.status().ToString().c_str());
    return 1;
  }

  // Sinks first, so their paths land in the report only if they were
  // actually written.
  std::vector<JsonValue::Member> sinks;
  if (!trace_out.empty() || !profile_out.empty()) {
    std::vector<const QueryTrace*> views;
    views.reserve(result.value().traces.size());
    for (const auto& trace : result.value().traces) {
      views.push_back(trace.get());
    }
    if (!trace_out.empty()) {
      if (Status w = WriteChromeTraceFile(trace_out, views); !w.ok()) {
        std::fprintf(stderr, "%s\n", w.ToString().c_str());
        return 1;
      }
      sinks.emplace_back("trace_out", JsonValue::String(trace_out));
    }
    if (!profile_out.empty()) {
      if (Status w = WriteFoldedFile(profile_out, BuildProfile(views));
          !w.ok()) {
        std::fprintf(stderr, "%s\n", w.ToString().c_str());
        return 1;
      }
      sinks.emplace_back("profile_out", JsonValue::String(profile_out));
    }
  }
  if (!metrics_out.empty()) {
    // Mirror the component memory balances (and peak RSS) into the
    // registry so the exported snapshot carries the mem.* gauges.
    MemStats::Default().PublishGauges(&MetricsRegistry::Default());
    if (Status w = WriteTextFile(
            metrics_out, MetricsRegistry::Default().Snapshot().ToJson());
        !w.ok()) {
      std::fprintf(stderr, "%s\n", w.ToString().c_str());
      return 1;
    }
    sinks.emplace_back("metrics_out", JsonValue::String(metrics_out));
  }

  std::string json = minerva::ScenarioResultToJson(
      result.value(), /*include_spec=*/!flags.GetBool("no-spec"));
  Result<JsonValue> result_doc = ParseJson(json);
  if (!result_doc.ok()) {
    std::fprintf(stderr, "internal: result JSON does not re-parse: %s\n",
                 result_doc.status().ToString().c_str());
    return 1;
  }
  BenchReport report(
      "run_scenario",
      JsonValue::Object({{"spec", JsonValue::String(spec_path)},
                         {"scenario",
                          JsonValue::String(result.value().spec.name)}}));
  report.AddSection("results", std::move(result_doc).value());
  if (!sinks.empty()) {
    report.AddSection("sinks", JsonValue::Object(std::move(sinks)));
  }

  const std::string& out = flags.GetString("out");
  if (out.empty()) {
    std::fputs(report.ToJsonString().c_str(), stdout);
  } else {
    if (Status w = report.WriteFile(out); !w.ok()) {
      std::fprintf(stderr, "%s\n", w.ToString().c_str());
      return 1;
    }
    std::printf("%s: recall=%.4f over %zu queries -> %s\n",
                result.value().spec.name.c_str(), result.value().mean_recall,
                result.value().queries_run, out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace iqn

int main(int argc, char** argv) { return iqn::Main(argc, argv); }

// run_scenario: execute one declarative scenario spec (minerva/scenario.h)
// and emit its result JSON.
//
// Usage: run_scenario SPEC.json [--out=RESULT.json] [--no-spec]
//          [--threads=N] [--canonicalize]
//
//   --out           write the result JSON here (default: stdout)
//   --no-spec       omit the canonical spec echo from the result
//   --threads       override engine.threads (0 = use the spec's value);
//                   results are bit-identical either way — this exists so
//                   CI can run the same specs under TSan with real
//                   concurrency without editing them
//   --canonicalize  print the spec's canonical full form and exit without
//                   running (how the checked-in scenarios/*.json were
//                   produced; the golden tests pin parse -> emit on them)
//
// The exit status is 0 on success, 1 on any parse/validation/run error —
// errors are descriptive Statuses on stderr, so a typoed spec names the
// offending key.

#include <cstdio>
#include <string>
#include <vector>

#include "minerva/scenario.h"
#include "util/flags.h"
#include "util/trace.h"

namespace iqn {
namespace {

Result<std::string> ReadTextFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  std::string contents;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    return Status::Internal("error reading " + path);
  }
  return contents;
}

int Main(int argc, char** argv) {
  Flags flags;
  flags.DefineString("out", "", "result JSON path (empty = stdout)");
  flags.DefineBool("no-spec", false,
                   "omit the canonical spec echo from the result JSON");
  flags.DefineInt("threads", 0,
                  "override engine.threads (0 = use the spec's value)");
  flags.DefineBool("canonicalize", false,
                   "print the canonical spec form and exit without running");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 1;
  }
  if (flags.positional().size() != 1) {
    std::fprintf(stderr, "usage: %s SPEC.json [--out=RESULT.json] "
                 "[--no-spec] [--threads=N] [--canonicalize]\n", argv[0]);
    return 1;
  }
  const std::string& spec_path = flags.positional()[0];

  Result<std::string> text = ReadTextFile(spec_path);
  if (!text.ok()) {
    std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
    return 1;
  }
  Result<minerva::ScenarioSpec> spec =
      minerva::ParseScenarioSpec(text.value());
  if (!spec.ok()) {
    std::fprintf(stderr, "%s: %s\n", spec_path.c_str(),
                 spec.status().ToString().c_str());
    return 1;
  }
  if (flags.GetBool("canonicalize")) {
    std::fputs(minerva::EmitScenarioSpec(spec.value()).c_str(), stdout);
    return 0;
  }
  if (flags.GetInt("threads") > 0) {
    spec.value().engine.threads =
        static_cast<size_t>(flags.GetInt("threads"));
  }

  Result<minerva::ScenarioResult> result =
      minerva::RunScenario(spec.value());
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", spec_path.c_str(),
                 result.status().ToString().c_str());
    return 1;
  }
  std::string json = minerva::ScenarioResultToJson(
      result.value(), /*include_spec=*/!flags.GetBool("no-spec"));
  const std::string& out = flags.GetString("out");
  if (out.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    if (Status w = WriteTextFile(out, json); !w.ok()) {
      std::fprintf(stderr, "%s\n", w.ToString().c_str());
      return 1;
    }
    std::printf("%s: recall=%.4f over %zu queries -> %s\n",
                result.value().spec.name.c_str(), result.value().mean_recall,
                result.value().queries_run, out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace iqn

int main(int argc, char** argv) { return iqn::Main(argc, argv); }

#!/usr/bin/env bash
# Repo lint pass: fast grep-based rules that encode IQN conventions, plus
# a clang-tidy sweep when clang-tidy is installed (skipped otherwise so
# the script works in gcc-only containers).
#
# Usage: tools/lint.sh            run all rules; nonzero exit on violation
#
# Suppressing a finding: append "// NOLINT" (optionally with a check name
# and a reason) to the offending line. Every grep rule skips NOLINT lines.
set -u
cd "$(dirname "$0")/.."

fail=0
report() {  # report <rule> <file:line:text>
  echo "lint: [$1] $2"
  fail=1
}

src_files() { find src fuzz -name '*.cc' -o -name '*.h'; }

# --- Rule: no libc rand()/srand(); use util/random.h (seeded, portable). ---
while IFS= read -r hit; do
  report no-rand "$hit"
done < <(grep -rnE '(^|[^_[:alnum:]])s?rand[[:space:]]*\(' \
           src tests fuzz --include='*.cc' --include='*.h' \
         | grep -v NOLINT || true)

# --- Rule: no assert(); untrusted input gets a Status, broken invariants
# --- get IQN_CHECK/IQN_DCHECK (util/check.h). static_assert is fine.
while IFS= read -r hit; do
  report no-assert "$hit"
done < <(grep -rnE '(^|[^_[:alnum:]])assert[[:space:]]*\(' \
           src fuzz --include='*.cc' --include='*.h' \
         | grep -v NOLINT || true)

# --- Rule: no raw threading primitives outside util/thread_pool.*. All
# --- concurrency goes through ThreadPool/Latch so shutdown, exception
# --- conversion, and determinism guarantees hold everywhere (there are no
# --- detached threads in this codebase by construction). Benches that
# --- want the core count use ThreadPool::DefaultConcurrency().
while IFS= read -r hit; do
  report no-raw-thread "$hit"
done < <(grep -rnE 'std::(jthread|thread|async)[^_[:alnum:]]' \
           src tests bench fuzz examples \
           --include='*.cc' --include='*.cpp' --include='*.h' 2>/dev/null \
         | grep -v '^src/util/thread_pool\.\(h\|cc\):' \
         | grep -vE ':[0-9]+:[[:space:]]*(//|\*)' \
         | grep -v NOLINT || true)

# --- Rule: no raw std::atomic counters in net/ or minerva/. Observable
# --- state goes through the metrics registry (util/metrics.h) so every
# --- counter shows up in snapshots/exports and sums stay deterministic;
# --- the registry itself is the one place allowed to hold atomics.
while IFS= read -r hit; do
  report iqn-metrics "$hit"
done < <(grep -rnE 'std::atomic[<_]' \
           src/net src/minerva --include='*.cc' --include='*.h' \
         | grep -vE ':[0-9]+:[[:space:]]*(//|\*)' \
         | grep -v NOLINT || true)

# --- Rule: no raw SimulatedNetwork::Rpc call sites outside net/. Every
# --- remote interaction goes through CallRpc (net/rpc_policy.h) so retry,
# --- deadline, and fault-context policy apply uniformly (DESIGN.md §9).
while IFS= read -r hit; do
  report no-raw-rpc "$hit"
done < <(grep -rnE '(->|\.)[[:space:]]*Rpc[[:space:]]*\(' \
           src --include='*.cc' --include='*.h' \
         | grep -v '^src/net/' \
         | grep -vE ':[0-9]+:[[:space:]]*(//|\*)' \
         | grep -v NOLINT || true)

# --- Rule: examples/, bench/, and tools/ build against the public facade
# --- only (minerva/api.h and the public data-model headers). The router
# --- implementations and the query processor under minerva/internal/ are
# --- not API; reaching for them from a consumer-side directory is how
# --- facade rot starts. Tests may include internal headers.
while IFS= read -r hit; do
  report no-internal-include "$hit"
done < <(grep -rnE '#include[[:space:]]*"minerva/internal/' \
           examples bench tools \
           --include='*.cc' --include='*.cpp' --include='*.h' 2>/dev/null \
         | grep -v NOLINT || true)

# --- Rule: no naked new outside factory wrappers. A `new T(...)` must sit
# --- on, or directly under, a line that hands ownership to a smart
# --- pointer; anything else leaks on the error path.
naked="$(while IFS= read -r f; do
  awk -v file="$f" '
    /NOLINT/ { prev = $0; next }
    /(^|[^_[:alnum:]])new [A-Za-z_][A-Za-z0-9_:<>]*[({]/ {
      if ($0 !~ /unique_ptr|shared_ptr|make_unique|make_shared/ &&
          prev !~ /unique_ptr|shared_ptr|make_unique|make_shared/ &&
          $0 !~ /^[[:space:]]*(\/\/|\*)/) {
        printf "%s:%d:%s\n", file, NR, $0
      }
    }
    { prev = $0 }
  ' "$f"
done < <(src_files))"
if [ -n "$naked" ]; then
  while IFS= read -r hit; do
    report no-naked-new "$hit"
  done <<< "$naked"
fi

# --- Rule: include guards must be IQN_<PATH>_H_ derived from the path
# --- relative to src/ (or the repo root outside src/).
while IFS= read -r f; do
  rel="${f#src/}"
  want="IQN_$(echo "$rel" | tr '[:lower:]/.' '[:upper:]__')_"
  got="$(grep -m1 '^#ifndef' "$f" | awk '{print $2}')"
  if [ "$got" != "$want" ]; then
    report include-guard "$f: guard is '${got:-<missing>}', want '$want'"
  fi
done < <(find src fuzz -name '*.h')

# --- clang-tidy sweep (optional: needs clang-tidy + compile_commands). ---
if command -v clang-tidy >/dev/null 2>&1; then
  cc_db=""
  for d in build/dev build; do
    [ -f "$d/compile_commands.json" ] && cc_db="$d" && break
  done
  if [ -z "$cc_db" ]; then
    echo "lint: clang-tidy found but no compile_commands.json;" \
         "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON (dev preset)"
  else
    echo "lint: running clang-tidy against $cc_db ..."
    if ! find src -name '*.cc' -print0 \
         | xargs -0 clang-tidy -p "$cc_db" --quiet; then
      fail=1
    fi
  fi
else
  echo "lint: clang-tidy not installed; skipping static-analysis sweep" \
       "(grep rules still enforced)"
fi

if [ "$fail" -ne 0 ]; then
  echo "lint: FAILED"
  exit 1
fi
echo "lint: OK"

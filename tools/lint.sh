#!/usr/bin/env bash
# Repo lint pass. The grep-era rules now live in tools/iqn_lint.py (one
# rule engine, per-rule allowlists, JSON output, --changed-only); this
# script stays as the entry point CI and muscle memory expect: it runs
# the rule engine and then a clang-tidy sweep when clang-tidy is
# installed (skipped otherwise so the script works in gcc-only
# containers).
#
# Usage: tools/lint.sh [iqn_lint args]   nonzero exit on violation
#   tools/lint.sh                 -> iqn_lint.py --all  + clang-tidy
#   tools/lint.sh --changed-only  -> only files changed vs HEAD
#
# Suppressing a finding: append "// NOLINT(<rule>) reason" to the line,
# or see tools/iqn_lint.py --list-rules for the file-scoped syntax.
set -u
cd "$(dirname "$0")/.."

fail=0

if [ "$#" -eq 0 ]; then
  python3 tools/iqn_lint.py --all || fail=1
else
  python3 tools/iqn_lint.py "$@" || fail=1
fi

# --- clang-tidy sweep (optional: needs clang-tidy + compile_commands). ---
if command -v clang-tidy >/dev/null 2>&1; then
  cc_db=""
  for d in build/dev build; do
    [ -f "$d/compile_commands.json" ] && cc_db="$d" && break
  done
  if [ -z "$cc_db" ]; then
    echo "lint: clang-tidy found but no compile_commands.json;" \
         "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON (dev preset)"
  else
    echo "lint: running clang-tidy against $cc_db ..."
    if ! find src -name '*.cc' -print0 \
         | xargs -0 clang-tidy -p "$cc_db" --quiet; then
      fail=1
    fi
  fi
else
  echo "lint: clang-tidy not installed; skipping static-analysis sweep" \
       "(iqn_lint rules still enforced)"
fi

if [ "$fail" -ne 0 ]; then
  echo "lint: FAILED"
  exit 1
fi

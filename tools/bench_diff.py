#!/usr/bin/env python3
"""Compare two BenchReport JSON files and flag metric drift.

Both inputs must be iqn.bench_report.v1 documents (any BENCH_*.json, or
a run_scenario --out file). Each document is flattened into dotted key
paths (arrays index as "results[3].recall") and compared key-by-key.
The comparison is EXACT by default: this repo's benches are
deterministic functions of their seeds, so two same-seed runs must
agree bit-for-bit on every deterministic key. Drift therefore means a
real behaviour change, not noise.

Keys that legitimately differ between runs are ignored by default:
  * git_sha, build_flags       (provenance, not behaviour)
  * sinks.*                    (output paths)
  * anything containing "wall" (wall-clock legs of the profiler)
  * anything containing "peak_rss" or "rss" (OS-dependent memory)

Usage:
  tools/bench_diff.py A.json B.json [--tolerance KEY=REL ...]
                      [--ignore KEY ...] [--selftest]

--tolerance results.recall=0.05 allows 5% relative drift on every key
whose dotted path equals or starts with "results.recall". --ignore adds
extra ignore prefixes. Exits 1 (listing each drifting key) on drift,
0 on a clean diff. Stdlib only; runs anywhere CI has a python3.
"""

import argparse
import json
import sys

DEFAULT_IGNORE_PREFIXES = ("git_sha", "build_flags", "sinks")
DEFAULT_IGNORE_SUBSTRINGS = ("wall", "peak_rss", "rss_")


def flatten(value, prefix="", out=None):
    """Flatten nested dicts/lists into {dotted_path: scalar}."""
    if out is None:
        out = {}
    if isinstance(value, dict):
        for key, child in value.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            flatten(child, path, out)
    elif isinstance(value, list):
        out[f"{prefix}.length" if prefix else "length"] = len(value)
        for i, child in enumerate(value):
            flatten(child, f"{prefix}[{i}]", out)
    else:
        out[prefix] = value
    return out


def is_ignored(path, extra_prefixes):
    for prefix in DEFAULT_IGNORE_PREFIXES + tuple(extra_prefixes):
        if path == prefix or path.startswith(prefix + ".") or \
                path.startswith(prefix + "["):
            return True
    return any(s in path for s in DEFAULT_IGNORE_SUBSTRINGS)


def tolerance_for(path, tolerances):
    """Longest matching tolerance prefix wins; None if no match."""
    best = None
    best_len = -1
    for key, rel in tolerances.items():
        if (path == key or path.startswith(key + ".") or
                path.startswith(key + "[")) and len(key) > best_len:
            best, best_len = rel, len(key)
    return best


def values_match(a, b, rel):
    if rel is not None and isinstance(a, (int, float)) and \
            isinstance(b, (int, float)) and not isinstance(a, bool) and \
            not isinstance(b, bool):
        return abs(a - b) <= rel * max(abs(a), abs(b), 1e-12)
    return a == b


def diff_reports(doc_a, doc_b, tolerances, extra_ignores):
    """Returns (drift_lines, compared_count, ignored_count)."""
    flat_a = flatten(doc_a)
    flat_b = flatten(doc_b)
    drift = []
    compared = 0
    ignored = 0
    for path in sorted(set(flat_a) | set(flat_b)):
        if is_ignored(path, extra_ignores):
            ignored += 1
            continue
        compared += 1
        if path not in flat_a:
            drift.append(f"{path}: only in B (= {flat_b[path]!r})")
        elif path not in flat_b:
            drift.append(f"{path}: only in A (= {flat_a[path]!r})")
        elif not values_match(flat_a[path], flat_b[path],
                              tolerance_for(path, tolerances)):
            drift.append(f"{path}: A={flat_a[path]!r} B={flat_b[path]!r}")
    return drift, compared, ignored


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: {path}: not readable JSON: {e}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(doc, dict) or doc.get("schema") != "iqn.bench_report.v1":
        print(f"bench_diff: {path}: not an iqn.bench_report.v1 document",
              file=sys.stderr)
        sys.exit(2)
    return doc


def selftest():
    base = {
        "schema": "iqn.bench_report.v1",
        "bench": "demo",
        "git_sha": "aaa",
        "build_flags": "-O2",
        "workload": {"seed": 42},
        "results": [{"recall": 0.5, "bytes": 1024}],
        "resources": {"peak_rss_bytes": 1000, "mem": {"ir.postings": 64}},
    }
    # Identical documents diff clean.
    drift, compared, _ = diff_reports(base, base, {}, [])
    assert not drift and compared > 0, drift
    # Provenance and RSS drift is ignored...
    other = json.loads(json.dumps(base))
    other["git_sha"] = "bbb"
    other["resources"]["peak_rss_bytes"] = 2000
    drift, _, ignored = diff_reports(base, other, {}, [])
    assert not drift and ignored >= 3, (drift, ignored)
    # ...but deterministic drift is not.
    other["results"][0]["bytes"] = 1025
    drift, _, _ = diff_reports(base, other, {}, [])
    assert drift == ["results[0].bytes: A=1024 B=1025"], drift
    # A tolerance on the right prefix accepts it; on the wrong one, not.
    drift, _, _ = diff_reports(base, other, {"results": 0.01}, [])
    assert not drift, drift
    drift, _, _ = diff_reports(base, other, {"workload": 0.01}, [])
    assert len(drift) == 1, drift
    # Missing keys are drift (array length changes show up too).
    other = json.loads(json.dumps(base))
    del other["results"][0]["recall"]
    drift, _, _ = diff_reports(base, other, {}, [])
    assert drift == ["results[0].recall: only in A (= 0.5)"], drift
    # Deterministic mem accounting is compared, not ignored.
    other = json.loads(json.dumps(base))
    other["resources"]["mem"]["ir.postings"] = 65
    drift, _, _ = diff_reports(base, other, {}, [])
    assert drift == ["resources.mem.ir.postings: A=64 B=65"], drift
    print("bench_diff: selftest OK")
    return 0


def parse_tolerance(spec):
    key, sep, rel = spec.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(
            f"--tolerance must be KEY=REL, got {spec!r}")
    try:
        value = float(rel)
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad tolerance value in {spec!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"tolerance must be >= 0: {spec!r}")
    return key, value


def main(argv):
    parser = argparse.ArgumentParser(
        prog="bench_diff.py",
        description="Compare two BenchReport JSON files for metric drift.")
    parser.add_argument("reports", nargs="*", metavar="REPORT.json")
    parser.add_argument("--tolerance", action="append", default=[],
                        type=parse_tolerance, metavar="KEY=REL",
                        help="allow REL relative drift on keys under KEY")
    parser.add_argument("--ignore", action="append", default=[],
                        metavar="KEY", help="extra key prefix to ignore")
    parser.add_argument("--allow-bench-mismatch", action="store_true",
                        help="compare reports from different benches "
                             "(e.g. run_scenario vs minerva_client; the "
                             "'bench' key still diffs unless ignored)")
    parser.add_argument("--selftest", action="store_true",
                        help="run the built-in self test and exit")
    args = parser.parse_args(argv[1:])

    if args.selftest:
        return selftest()
    if len(args.reports) != 2:
        parser.error("expected exactly two report files")
    doc_a = load_report(args.reports[0])
    doc_b = load_report(args.reports[1])
    if doc_a.get("bench") != doc_b.get("bench") and \
            not args.allow_bench_mismatch:
        print(f"bench_diff: comparing different benches: "
              f'{doc_a.get("bench")!r} vs {doc_b.get("bench")!r}',
              file=sys.stderr)
        return 2
    drift, compared, ignored = diff_reports(
        doc_a, doc_b, dict(args.tolerance), args.ignore)
    if drift:
        print(f"bench_diff: {args.reports[0]} vs {args.reports[1]}: "
              f"{len(drift)} drifting key(s):", file=sys.stderr)
        for line in drift:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"bench_diff: OK ({compared} keys compared, {ignored} ignored)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

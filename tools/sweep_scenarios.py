#!/usr/bin/env python3
"""sweep_scenarios: fan a scenario-spec grid out and aggregate results.

Takes one base spec (a scenarios/*.json file), a set of axes — dotted
spec paths with comma-separated values — and runs the cartesian product
through tools/run_scenario, one derived spec and one result JSON per
grid point, then writes a single aggregate JSON with every point's
overrides and headline metrics side by side.

Usage:
  tools/sweep_scenarios.py scenarios/adversary_inflate.json \
      --set adversary.fraction=0,0.1,0.2,0.3 \
      --set reputation.enabled=false,true \
      --run-scenario build/tools/run_scenario \
      --outdir /tmp/sweep --aggregate /tmp/sweep/aggregate.json

Axis values are parsed as JSON fragments (so `true`, `0.2`, `"cori"`
and `7` all type correctly); a value that does not parse as JSON is
kept as a string. The dotted path must already exist in the base spec —
the strict parser in run_scenario rejects unknown keys, so a typoed
axis fails loudly instead of sweeping a default.

Exit status: 0 = all points ran, 1 = any point failed (its stderr is
reported and it appears in the aggregate with "ok": false).
"""

import argparse
import itertools
import json
import os
import subprocess
import sys


def parse_axis(arg):
    """"a.b.c=v1,v2" -> (["a","b","c"], [typed v1, typed v2])."""
    if "=" not in arg:
        raise SystemExit(f"--set needs PATH=V1[,V2...], got: {arg}")
    path, _, raw = arg.partition("=")
    path = path.strip()
    if not path:
        raise SystemExit(f"--set has an empty path: {arg}")
    values = []
    for token in raw.split(","):
        token = token.strip()
        try:
            values.append(json.loads(token))
        except json.JSONDecodeError:
            values.append(token)  # bare string, e.g. --set engine.router=cori
    if not values:
        raise SystemExit(f"--set has no values: {arg}")
    return path.split("."), values


def apply_override(spec, path, value):
    """Sets spec[path[0]]...[path[-1]] = value; the path must exist."""
    node = spec
    for key in path[:-1]:
        if not isinstance(node, dict) or key not in node:
            raise SystemExit(f"axis path not in base spec: {'.'.join(path)}")
        node = node[key]
    if not isinstance(node, dict) or path[-1] not in node:
        raise SystemExit(f"axis path not in base spec: {'.'.join(path)}")
    node[path[-1]] = value


def point_name(base_name, assignment):
    parts = [base_name]
    for path, value in assignment:
        parts.append(f"{path[-1]}={json.dumps(value)}".replace('"', ""))
    return "__".join(parts).replace("/", "_").replace(" ", "")


def main(argv):
    ap = argparse.ArgumentParser(
        description="run a grid of scenario specs and aggregate results")
    ap.add_argument("base_spec", help="base scenario spec JSON file")
    ap.add_argument("--set", dest="axes", action="append", default=[],
                    metavar="PATH=V1,V2", help="sweep axis (repeatable)")
    ap.add_argument("--run-scenario", default="build/tools/run_scenario",
                    help="path to the run_scenario binary")
    ap.add_argument("--outdir", default="sweep_out",
                    help="directory for derived specs and per-point results")
    ap.add_argument("--aggregate", default=None,
                    help="aggregate JSON path (default OUTDIR/aggregate.json)")
    args = ap.parse_args(argv)

    with open(args.base_spec, encoding="utf-8") as fh:
        base = json.load(fh)
    base_name = base.get("name", os.path.basename(args.base_spec))

    axes = [parse_axis(a) for a in args.axes]
    os.makedirs(args.outdir, exist_ok=True)
    aggregate_path = args.aggregate or os.path.join(args.outdir,
                                                    "aggregate.json")

    grids = itertools.product(*[[(path, v) for v in values]
                                for path, values in axes]) if axes else [()]
    points = []
    failed = 0
    for assignment in grids:
        spec = json.loads(json.dumps(base))  # deep copy
        for path, value in assignment:
            apply_override(spec, path, value)
        name = point_name(base_name, assignment)
        spec["name"] = name
        spec_path = os.path.join(args.outdir, f"{name}.spec.json")
        result_path = os.path.join(args.outdir, f"{name}.result.json")
        with open(spec_path, "w", encoding="utf-8") as fh:
            json.dump(spec, fh, indent=2)
            fh.write("\n")
        proc = subprocess.run(
            [args.run_scenario, spec_path, "--out", result_path],
            capture_output=True, text=True)
        point = {
            "name": name,
            "overrides": {".".join(p): v for p, v in assignment},
            "spec": os.path.basename(spec_path),
            "ok": proc.returncode == 0,
        }
        if proc.returncode != 0:
            failed += 1
            point["error"] = proc.stderr.strip()
            print(f"FAIL {name}: {proc.stderr.strip()}", file=sys.stderr)
        else:
            with open(result_path, encoding="utf-8") as fh:
                result = json.load(fh)
            # run_scenario wraps the scenario result in a bench report
            # (schema iqn.bench_report.v1) with the measurements under
            # "results"; unwrap it, but keep reading bare result files
            # from older binaries.
            if "schema" in result and "results" in result:
                result = result["results"]
            point["result"] = os.path.basename(result_path)
            for key in ("queries_run", "mean_recall", "mean_recall_remote",
                        "round_recall", "messages", "bytes",
                        "result_fingerprint"):
                if key in result:
                    point[key] = result[key]
            print(f"ok   {name}: recall={point.get('mean_recall'):.4f} "
                  f"bytes={point.get('bytes')}")
        points.append(point)

    aggregate = {
        "base_spec": args.base_spec,
        "axes": [{"path": ".".join(p), "values": v} for p, v in axes],
        "points": points,
        "failed": failed,
    }
    with open(aggregate_path, "w", encoding="utf-8") as fh:
        json.dump(aggregate, fh, indent=2)
        fh.write("\n")
    print(f"wrote {aggregate_path} ({len(points)} points, {failed} failed)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
